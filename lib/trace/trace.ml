(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

(* The default clock is logical: each reading advances it one
   microsecond, so a scripted session produces the same timestamps on
   every run.  Benchmarks swap in a wall clock with [set_clock]. *)

let logical = ref 0

let logical_clock () =
  incr logical;
  !logical

let clock = ref logical_clock
let set_clock f = clock := f
let use_logical_clock () = clock := logical_clock

(* Every clock reading feeds the rolling-window machinery below; the
   hook is installed once the window state exists (end of this file). *)
let tick_hook : (int -> unit) ref = ref (fun _ -> ())
let last_tick = ref 0

let now_us () =
  let t = !clock () in
  last_tick := t;
  !tick_hook t;
  t

(* The logical clock's current position without a reading: no advance,
   no window tick.  The WAL stamps records with this, so logging an
   operation is clock-transparent — a session with a log attached keeps
   the same timestamps as one without. *)
let logical_now () = !logical

(* Model waiting (a client timeout, retry backoff, injected latency) by
   jumping the logical clock forward.  An injected wall clock keeps its
   own time, so this is a no-op under [set_clock]; the window check only
   runs when the jump actually moved the active timebase. *)
let advance n =
  if n > 0 then begin
    logical := !logical + n;
    if !clock == logical_clock then begin
      last_tick := !logical;
      !tick_hook !logical
    end
  end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type counter = { mutable c_v : int }
type gauge = { mutable g_v : int }

(* Histograms keep geometric buckets (quarter-octave resolution) next
   to the running count/sum/min/max, so percentiles can be read without
   storing observations.  Values 0..3 get exact buckets; a value v >= 4
   with 2^o <= v < 2^(o+1) lands in one of four sub-buckets of its
   octave, giving a relative error bound of 2^(o-2)/2^o = 25% on any
   reported quantile. *)
let hist_buckets = 256

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_b : int array;  (* bucket occupancy, [hist_buckets] slots *)
}

let bucket_of v =
  if v <= 3 then max 0 v
  else begin
    (* octave o: 2^o <= v < 2^(o+1); quarter: next two bits down *)
    let o = ref 2 in
    while v lsr (!o + 1) > 0 do
      incr o
    done;
    let q = (v lsr (!o - 2)) land 3 in
    min (hist_buckets - 1) ((!o - 1) * 4 + q)
  end

(* Upper bound of a bucket — the pessimistic representative, so a
   reported percentile never understates the observed latency. *)
let bucket_upper i =
  if i <= 3 then i
  else
    let o = (i / 4) + 1 in
    let q = i mod 4 in
    (1 lsl o) + ((q + 1) * (1 lsl (o - 2))) - 1

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Trace: %s is already registered as another kind" name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> kind_clash name
  | None ->
      let c = { c_v = 0 } in
      Hashtbl.replace registry name (Counter c);
      c

let incr ?(by = 1) c = c.c_v <- c.c_v + by
let value c = c.c_v

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> kind_clash name
  | None ->
      let g = { g_v = 0 } in
      Hashtbl.replace registry name (Gauge g);
      g

let set_gauge g v = g.g_v <- v
let gauge_value g = g.g_v

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> kind_clash name
  | None ->
      let h =
        { h_count = 0; h_sum = 0; h_min = 0; h_max = 0;
          h_b = Array.make hist_buckets 0 }
      in
      Hashtbl.replace registry name (Histogram h);
      h

let observe h v =
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  h.h_b.(bucket_of v) <- h.h_b.(bucket_of v) + 1

let histogram_stats h = (h.h_count, h.h_sum, h.h_min, h.h_max)

(* Percentile over a raw bucket array: the upper bound of the bucket
   holding the rank, clamped to [bmax] (the caller's exact observed
   maximum, or the highest occupied bucket's bound for window deltas).
   0 when [count] is 0. *)
let percentile_from ~count ~bmax b p =
  if count <= 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int count)))
    in
    let acc = ref 0 and i = ref 0 and found = ref bmax in
    (try
       while !i < hist_buckets do
         acc := !acc + b.(!i);
         if !acc >= rank then begin
           found := bucket_upper !i;
           raise Exit
         end;
         i := !i + 1
       done
     with Exit -> ());
    min !found bmax
  end

(* The value at or below which [p] percent of observations fall, read
   from the buckets: the upper bound of the bucket holding the rank
   (clamped to the observed max, which is exact).  0 before any
   observation. *)
let percentile h p = percentile_from ~count:h.h_count ~bmax:h.h_max h.h_b p

let stats_text () =
  let lines =
    Hashtbl.fold
      (fun name inst acc ->
        match inst with
        | Counter c -> (name, c.c_v) :: acc
        | Gauge g -> (name, g.g_v) :: acc
        | Histogram h ->
            (name ^ ".count", h.h_count)
            :: (name ^ ".sum", h.h_sum)
            :: (name ^ ".min", h.h_min)
            :: (name ^ ".max", h.h_max)
            :: acc)
      registry []
  in
  let b = Buffer.create 512 in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" k v))
    (List.sort compare lines);
  Buffer.contents b

let find_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some c.c_v
  | Some (Gauge g) -> Some g.g_v
  | _ -> None

let find_prefix prefix =
  let plen = String.length prefix in
  let matches name =
    String.length name >= plen && String.sub name 0 plen = prefix
  in
  Hashtbl.fold
    (fun name inst acc ->
      if not (matches name) then acc
      else
        match inst with
        | Counter c -> (name, c.c_v) :: acc
        | Gauge g -> (name, g.g_v) :: acc
        | Histogram _ -> acc)
    registry []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Request context and head sampling                                   *)

(* Request ids are allocated at scheduler submit time (one per RPC) and
   reset with the ledger, so the same scripted session allocates the
   same ids on every run.  The sampling verdict is a pure function of
   (seed, id): head sampling — decided before any work happens — that
   replays identically under the same seed. *)

let next_req = ref 0

let request_id () =
  Stdlib.incr next_req;
  !next_req

let cur_req = ref 0
let current_request () = !cur_req
let sample_seed = ref 0
let sample_rate = ref 1

let set_sampling ?seed ?rate () =
  (match seed with Some s -> sample_seed := s | None -> ());
  (match rate with Some r -> sample_rate := max 0 r | None -> ())

let sampling () = (!sample_seed, !sample_rate)

let sample reqid =
  match !sample_rate with
  | 0 -> false
  | 1 -> true
  | n ->
      (* integer avalanche of (seed, id): deterministic, well spread *)
      let x = !sample_seed lxor (reqid * 0x9E3779B9) in
      let x = x lxor (x lsr 16) in
      let x = x * 0x45D9F3B land max_int in
      let x = x lxor (x lsr 13) in
      x mod n = 0

(* ------------------------------------------------------------------ *)
(* Span ring                                                           *)

type span = {
  sp_name : string;
  sp_start : int;
  sp_dur : int;
  sp_depth : int;
  sp_req : int;
  sp_args : (string * string) list;
}

(* Circular buffer of completed spans; overflow drops the oldest. *)
let default_capacity = 4096
let ring = ref (Array.make default_capacity None)
let ring_head = ref 0  (* index of the oldest buffered span *)
let ring_len = ref 0
let ring_dropped = ref 0  (* since the last drain *)
let dropped_total = counter "trace.spans.dropped"
let depth = ref 0

let set_ring_capacity n =
  let n = max 1 n in
  ring := Array.make n None;
  ring_head := 0;
  ring_len := 0

let ring_capacity () = Array.length !ring
let pending_spans () = !ring_len

let record sp =
  let cap = Array.length !ring in
  if !ring_len = cap then begin
    (* overwrite the oldest *)
    !ring.(!ring_head) <- Some sp;
    ring_head := (!ring_head + 1) mod cap;
    Stdlib.incr ring_dropped;
    incr dropped_total
  end
  else begin
    !ring.((!ring_head + !ring_len) mod cap) <- Some sp;
    Stdlib.incr ring_len
  end

let peek () =
  let cap = Array.length !ring in
  let spans =
    List.init !ring_len (fun i ->
        match !ring.((!ring_head + i) mod cap) with
        | Some sp -> sp
        | None -> assert false)
  in
  (spans, !ring_dropped)

let drain () =
  let out = peek () in
  let cap = Array.length !ring in
  Array.fill !ring 0 cap None;
  ring_head := 0;
  ring_len := 0;
  ring_dropped := 0;
  out

let with_span_result name f =
  let d = !depth in
  depth := d + 1;
  let start = now_us () in
  let finish args =
    depth := d;
    record
      { sp_name = name; sp_start = start; sp_dur = now_us () - start;
        sp_depth = d; sp_req = !cur_req; sp_args = args }
  in
  match f () with
  | v, args ->
      finish args;
      v
  | exception e ->
      finish [ ("error", Printexc.to_string e) ];
      raise e

let with_span ?(args = []) name f =
  with_span_result name (fun () -> (f (), args))

let with_request ~reqid ?args name f =
  let saved = !cur_req in
  cur_req := reqid;
  match with_span ?args name f with
  | v ->
      cur_req := saved;
      v
  | exception e ->
      cur_req := saved;
      raise e

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let spans_text ?(dropped = 0) spans =
  let b = Buffer.create 512 in
  List.iter
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf "%d +%d %s%s" sp.sp_start sp.sp_dur
           (String.make (2 * sp.sp_depth) ' ')
           sp.sp_name);
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v))
        sp.sp_args;
      Buffer.add_char b '\n')
    spans;
  if dropped > 0 then
    Buffer.add_string b (Printf.sprintf "# %d spans dropped\n" dropped);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let spans_json spans =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d"
           (json_escape sp.sp_name) sp.sp_start sp.sp_dur (sp.sp_depth + 1));
      if sp.sp_args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          sp.sp_args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    spans;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Per-request span trees                                              *)

let requests () =
  let seen = Hashtbl.create 16 in
  let spans, _ = peek () in
  List.filter_map
    (fun sp ->
      if sp.sp_req = 0 || Hashtbl.mem seen sp.sp_req then None
      else begin
        Hashtbl.add seen sp.sp_req ();
        Some sp.sp_req
      end)
    spans

let request_spans reqid =
  let spans, _ = peek () in
  let mine = List.filter (fun sp -> sp.sp_req = reqid) spans in
  (* Ring order is completion order (children before parents); sort
     into preorder — by start time, parents before children on ties. *)
  List.stable_sort
    (fun a b -> compare (a.sp_start, a.sp_depth) (b.sp_start, b.sp_depth))
    mine

let request_text reqid =
  match request_spans reqid with
  | [] -> None
  | spans -> Some (spans_text spans)

(* ------------------------------------------------------------------ *)
(* Rolling windows                                                     *)

(* Time is divided into fixed-width epochs on whatever clock is active;
   crossing an epoch boundary snapshots the whole registry (plus the GC
   counters).  A bounded ring of snapshots — one per recently closed
   slot — turns any counter into a per-window rate and any histogram
   into per-window quantiles, by differencing consecutive snapshots.
   Nothing is recorded twice: windows are pure views over the registry.

   A snapshot's [sn_at] is the epoch whose *start* it represents, so
   the delta between snapshots at [a] and [b] is the activity in slots
   [a, b).  A clock jump larger than the whole window prunes every old
   snapshot — those slots have expired and are never reported. *)

let default_window_width = 65536
let default_window_slots = 16

type hsnap = { hs_count : int; hs_sum : int; hs_b : int array }
let zero_hsnap = { hs_count = 0; hs_sum = 0; hs_b = Array.make hist_buckets 0 }

type snap = {
  sn_at : int;
  sn_scalars : (string * int) list;  (* sorted by name *)
  sn_hists : (string * hsnap) list;  (* sorted by name *)
  sn_minor : float;
  sn_majors : int;
}

let w_width = ref default_window_width
let w_slots = ref default_window_slots
let w_epoch = ref 0
let w_snaps : snap list ref = ref []  (* newest first *)
let w_rolls = counter "trace.window.rolls"

let take_snap at =
  let scalars = ref [] and hists = ref [] in
  Hashtbl.iter
    (fun name inst ->
      match inst with
      | Counter c -> scalars := (name, c.c_v) :: !scalars
      | Gauge g -> scalars := (name, g.g_v) :: !scalars
      | Histogram h ->
          hists :=
            ( name,
              { hs_count = h.h_count; hs_sum = h.h_sum;
                hs_b = Array.copy h.h_b } )
            :: !hists)
    registry;
  let st = Gc.quick_stat () in
  { sn_at = at;
    sn_scalars = List.sort compare !scalars;
    sn_hists = List.sort (fun (a, _) (b, _) -> compare a b) !hists;
    sn_minor = st.Gc.minor_words;
    sn_majors = st.Gc.major_collections }

let window_check t =
  let e = t / !w_width in
  if e > !w_epoch then begin
    let keep = e - !w_slots in
    w_snaps := take_snap e :: List.filter (fun s -> s.sn_at >= keep) !w_snaps;
    w_epoch := e;
    incr w_rolls
  end

let window_configure ?width ?slots () =
  (match width with Some w -> w_width := max 1 w | None -> ());
  (match slots with Some s -> w_slots := max 1 s | None -> ());
  let e = !last_tick / !w_width in
  w_epoch := e;
  w_snaps := [ take_snap e ]

let window_width () = !w_width
let window_slots () = !w_slots

(* Consecutive snapshot pairs, oldest first. *)
let snap_pairs () =
  let rec go = function
    | a :: (b :: _ as rest) -> (a, b) :: go rest
    | _ -> []
  in
  go (List.rev !w_snaps)

let snap_scalar sn name =
  match List.assoc_opt name sn.sn_scalars with Some v -> v | None -> 0

let snap_hist sn name =
  match List.assoc_opt name sn.sn_hists with Some h -> h | None -> zero_hsnap

let window_series name =
  List.map
    (fun (a, b) -> (a.sn_at, snap_scalar b name - snap_scalar a name))
    (snap_pairs ())

let hist_delta name (a, b) =
  let ha = snap_hist a name and hb = snap_hist b name in
  let db = Array.init hist_buckets (fun i -> hb.hs_b.(i) - ha.hs_b.(i)) in
  (hb.hs_count - ha.hs_count, db)

let delta_percentile (dc, db) p =
  if dc <= 0 then 0
  else begin
    (* no exact max for a delta; clamp to the highest occupied bucket *)
    let bmax = ref 0 in
    Array.iteri (fun i v -> if v > 0 then bmax := bucket_upper i) db;
    percentile_from ~count:dc ~bmax:!bmax db p
  end

let window_quantiles name =
  List.map
    (fun pair ->
      let (dc, _) as d = hist_delta name pair in
      let a, _ = pair in
      ( a.sn_at, dc, delta_percentile d 50., delta_percentile d 95.,
        delta_percentile d 99. ))
    (snap_pairs ())

let window_gc () =
  List.map
    (fun (a, b) ->
      ( a.sn_at,
        int_of_float (b.sn_minor -. a.sn_minor),
        b.sn_majors - a.sn_majors ))
    (snap_pairs ())

let () =
  w_snaps := [ take_snap 0 ];
  tick_hook := window_check

(* ------------------------------------------------------------------ *)
(* Prometheus-style exposition                                         *)

let sanitize_metric name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* The content of [/mnt/help/metrics].  Deterministic for a scripted
   session: derived only from the registry and the logical-clock window
   snapshots, never from GC or wall-clock state. *)
let metrics_text () =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  Hashtbl.iter
    (fun name inst ->
      match inst with
      | Counter c -> counters := (name, c.c_v) :: !counters
      | Gauge g -> gauges := (name, g.g_v) :: !gauges
      | Histogram h -> hists := (name, h) :: !hists)
    registry;
  let b = Buffer.create 2048 in
  List.iter
    (fun (name, v) ->
      let n = sanitize_metric name in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s counter\n%s_total %d\n" n n v))
    (List.sort compare !counters);
  List.iter
    (fun (name, v) ->
      let n = sanitize_metric name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n v))
    (List.sort compare !gauges);
  List.iter
    (fun (name, h) ->
      let n = sanitize_metric name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let acc = ref 0 in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            acc := !acc + c;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n (bucket_upper i)
                 !acc)
          end)
        h.h_b;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.h_count);
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n h.h_sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.h_count);
      (* per-window quantiles over the most recently closed slot; the
         whole-run percentiles before any slot has closed *)
      let dc, p50, p95, p99 =
        match List.rev (window_quantiles name) with
        | (_, dc, p50, p95, p99) :: _ when dc > 0 -> (dc, p50, p95, p99)
        | _ ->
            ( h.h_count, percentile h 50., percentile h 95.,
              percentile h 99. )
      in
      Buffer.add_string b (Printf.sprintf "# TYPE %s_window summary\n" n);
      Buffer.add_string b
        (Printf.sprintf "%s_window{quantile=\"0.5\"} %d\n" n p50);
      Buffer.add_string b
        (Printf.sprintf "%s_window{quantile=\"0.95\"} %d\n" n p95);
      Buffer.add_string b
        (Printf.sprintf "%s_window{quantile=\"0.99\"} %d\n" n p99);
      Buffer.add_string b (Printf.sprintf "%s_window_count %d\n" n dc))
    (List.sort (fun (a, _) (b, _) -> compare a b) !hists);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Alerts                                                              *)

(* A threshold-watch table over the ledger: each rule names a source —
   the current value of a counter or gauge, the last closed window's
   delta of a counter, or a percentile of a histogram over the last
   closed window — and compares it against a constant.  The table is
   tiny and evaluated only when read ([/mnt/help/alerts]), so a rule
   costs nothing until somebody cats the file. *)

type alert_source =
  | Avalue of string
  | Arate of string
  | Apct of string * float

type alert_op = Gt | Ge | Lt | Le

type alert = {
  a_name : string;
  a_src : alert_source;
  a_op : alert_op;
  a_thresh : int;
}

let alert_table : alert list ref = ref []

let render_source = function
  | Avalue m -> Printf.sprintf "value(%s)" m
  | Arate m -> Printf.sprintf "rate(%s)" m
  | Apct (m, p) ->
      if Float.is_integer p then
        Printf.sprintf "p%d(%s)" (int_of_float p) m
      else Printf.sprintf "p%g(%s)" p m

let render_op = function Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="

let render_alert a =
  Printf.sprintf "%s: %s %s %d" a.a_name (render_source a.a_src)
    (render_op a.a_op) a.a_thresh

let strip s =
  let is_sp c = c = ' ' || c = '\t' in
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < n && is_sp s.[!i] do Stdlib.incr i done;
  while !j > !i && is_sp s.[!j - 1] do Stdlib.decr j done;
  String.sub s !i (!j - !i)

let parse_source expr =
  match String.index_opt expr '(' with
  | Some oi
    when String.length expr > oi + 1
         && expr.[String.length expr - 1] = ')' -> (
      let fn = String.sub expr 0 oi in
      let m = String.sub expr (oi + 1) (String.length expr - oi - 2) in
      if m = "" then Error "empty metric name"
      else
        match fn with
        | "value" -> Ok (Avalue m)
        | "rate" -> Ok (Arate m)
        | _ when String.length fn > 1 && fn.[0] = 'p' -> (
            match
              float_of_string_opt (String.sub fn 1 (String.length fn - 1))
            with
            | Some p when p >= 0. && p <= 100. -> Ok (Apct (m, p))
            | _ -> Error (Printf.sprintf "bad percentile %S" fn))
        | _ -> Error (Printf.sprintf "unknown source %S" fn))
  | _ -> Error (Printf.sprintf "expected fn(metric), got %S" expr)

let parse_alert line =
  match String.index_opt line ':' with
  | None -> Error "missing `name:' prefix"
  | Some ci -> (
      let name = strip (String.sub line 0 ci) in
      let rest =
        strip (String.sub line (ci + 1) (String.length line - ci - 1))
      in
      if name = "" then Error "empty rule name"
      else
        match
          String.split_on_char ' ' rest |> List.filter (fun t -> t <> "")
        with
        | [ expr; op; thresh ] -> (
            let op =
              match op with
              | ">" -> Ok Gt
              | ">=" -> Ok Ge
              | "<" -> Ok Lt
              | "<=" -> Ok Le
              | o -> Error (Printf.sprintf "unknown comparison %S" o)
            in
            match (parse_source expr, op, int_of_string_opt thresh) with
            | Ok s, Ok o, Some t ->
                Ok { a_name = name; a_src = s; a_op = o; a_thresh = t }
            | (Error _ as e), _, _ -> e
            | _, Error e, _ -> Error e
            | _, _, None -> Error (Printf.sprintf "bad threshold %S" thresh))
        | _ -> Error "expected `name: fn(metric) op threshold'")

let add_alert a =
  alert_table :=
    List.filter (fun x -> x.a_name <> a.a_name) !alert_table @ [ a ]

let install_alert line =
  match parse_alert line with
  | Ok a ->
      add_alert a;
      Ok a
  | Error _ as e -> e

let alert_rules () = List.map render_alert !alert_table

let eval_alert a =
  match a.a_src with
  | Avalue m -> ( match find_value m with Some v -> v | None -> 0)
  | Arate m -> (
      match List.rev (window_series m) with (_, d) :: _ -> d | [] -> 0)
  | Apct (m, p) -> (
      match Hashtbl.find_opt registry m with
      | Some (Histogram h) -> (
          match List.rev (snap_pairs ()) with
          | pair :: _ ->
              let (dc, _) as d = hist_delta m pair in
              if dc > 0 then delta_percentile d p else percentile h p
          | [] -> percentile h p)
      | _ -> 0)

let alert_firing a v =
  match a.a_op with
  | Gt -> v > a.a_thresh
  | Ge -> v >= a.a_thresh
  | Lt -> v < a.a_thresh
  | Le -> v <= a.a_thresh

let alerts_text () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "# %d rules, window %dus x %d slots\n"
       (List.length !alert_table) !w_width !w_slots);
  List.iter
    (fun a ->
      let v = eval_alert a in
      Buffer.add_string b
        (Printf.sprintf "%s %s %d %s %s %d\n" a.a_name
           (if alert_firing a v then "firing" else "ok")
           v (render_source a.a_src) (render_op a.a_op) a.a_thresh))
    !alert_table;
  Buffer.contents b

let default_alerts =
  [
    "rpc-p99: p99(nine.rpc.us) > 100000";
    "backpressure: rate(nine.backpressure.stalls) > 1000";
    "journal-drops: value(nine.journal.dropped) > 0";
    "span-drops: rate(trace.spans.dropped) > 100000";
    (* a healthy index re-tokenizes a handful of dirty documents per
       query; a sustained storm means staleness tracking is thrashing *)
    "index-thrash: rate(index.stale.reindexed) > 10000";
  ]

let install_default_alerts () =
  List.iter
    (fun l ->
      match install_alert l with
      | Ok _ -> ()
      | Error e -> invalid_arg (Printf.sprintf "Trace: default alert %S: %s" l e))
    default_alerts

(* ------------------------------------------------------------------ *)

let reset () =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | Counter c -> c.c_v <- 0
      | Gauge g -> g.g_v <- 0
      | Histogram h ->
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- 0;
          h.h_max <- 0;
          Array.fill h.h_b 0 hist_buckets 0)
    registry;
  let cap = Array.length !ring in
  Array.fill !ring 0 cap None;
  ring_head := 0;
  ring_len := 0;
  ring_dropped := 0;
  depth := 0;
  logical := 0;
  last_tick := 0;
  next_req := 0;
  cur_req := 0;
  sample_seed := 0;
  sample_rate := 1;
  alert_table := [];
  w_width := default_window_width;
  w_slots := default_window_slots;
  w_epoch := 0;
  w_snaps := [ take_snap 0 ]

(* ------------------------------------------------------------------ *)
(* State capture                                                       *)

(* Everything a recovered session needs to continue the crashed
   session's ledger exactly: the clock position, request-id allocator,
   sampling, window geometry and epoch, every instrument's value, the
   alert table, and the retained window snapshots.  The span ring is
   deliberately NOT captured — spans are debug traffic, and recovery
   restarts with an empty ring (depth 0, nothing buffered).

   [sn_minor] is a float (GC minor words); it round-trips through
   [string_of_float]/[float_of_string], which is exact for the values
   [Gc.quick_stat] produces. *)

let state_version = 1

let w_hist_payload b (count, sum, mn, mx) (bkts : int array) =
  Codec.w_int b count;
  Codec.w_int b sum;
  Codec.w_int b mn;
  Codec.w_int b mx;
  (* sparse buckets: (index, occupancy) pairs *)
  let occupied = ref [] in
  Array.iteri (fun i v -> if v <> 0 then occupied := (i, v) :: !occupied) bkts;
  Codec.w_list b
    (fun b (i, v) ->
      Codec.w_int b i;
      Codec.w_int b v)
    (List.rev !occupied)

let r_hist_payload d =
  let count = Codec.r_int d in
  let sum = Codec.r_int d in
  let mn = Codec.r_int d in
  let mx = Codec.r_int d in
  let bkts = Array.make hist_buckets 0 in
  List.iter
    (fun (i, v) -> if i >= 0 && i < hist_buckets then bkts.(i) <- v)
    (Codec.r_list d (fun d ->
         let i = Codec.r_int d in
         let v = Codec.r_int d in
         (i, v)));
  ((count, sum, mn, mx), bkts)

let w_snap b sn =
  Codec.w_int b sn.sn_at;
  Codec.w_list b
    (fun b (name, v) ->
      Codec.w_str b name;
      Codec.w_int b v)
    sn.sn_scalars;
  Codec.w_list b
    (fun b (name, hs) ->
      Codec.w_str b name;
      w_hist_payload b (hs.hs_count, hs.hs_sum, 0, 0) hs.hs_b)
    sn.sn_hists;
  Codec.w_str b (string_of_float sn.sn_minor);
  Codec.w_int b sn.sn_majors

let r_snap d =
  let at = Codec.r_int d in
  let scalars =
    Codec.r_list d (fun d ->
        let name = Codec.r_str d in
        let v = Codec.r_int d in
        (name, v))
  in
  let hists =
    Codec.r_list d (fun d ->
        let name = Codec.r_str d in
        let (count, sum, _, _), bkts = r_hist_payload d in
        (name, { hs_count = count; hs_sum = sum; hs_b = bkts }))
  in
  let minor = float_of_string (Codec.r_str d) in
  let majors = Codec.r_int d in
  { sn_at = at; sn_scalars = scalars; sn_hists = hists;
    sn_minor = minor; sn_majors = majors }

let save_state () =
  let b = Buffer.create 4096 in
  Codec.w_int b state_version;
  Codec.w_int b !logical;
  Codec.w_int b !last_tick;
  Codec.w_int b !next_req;
  Codec.w_int b !cur_req;
  Codec.w_int b !sample_seed;
  Codec.w_int b !sample_rate;
  Codec.w_int b !w_width;
  Codec.w_int b !w_slots;
  Codec.w_int b !w_epoch;
  let entries =
    Hashtbl.fold (fun name inst acc -> (name, inst) :: acc) registry []
    |> List.sort compare
  in
  Codec.w_list b
    (fun b (name, inst) ->
      Codec.w_str b name;
      match inst with
      | Counter c ->
          Codec.w_int b 0;
          Codec.w_int b c.c_v
      | Gauge g ->
          Codec.w_int b 1;
          Codec.w_int b g.g_v
      | Histogram h ->
          Codec.w_int b 2;
          w_hist_payload b (h.h_count, h.h_sum, h.h_min, h.h_max) h.h_b)
    entries;
  Codec.w_list b Codec.w_str (alert_rules ());
  Codec.w_list b w_snap !w_snaps;
  Buffer.contents b

let restore_state s =
  let d = Codec.reader s in
  let v = Codec.r_int d in
  if v <> state_version then
    invalid_arg (Printf.sprintf "Trace.restore_state: version %d" v);
  let logical' = Codec.r_int d in
  let last_tick' = Codec.r_int d in
  let next_req' = Codec.r_int d in
  let cur_req' = Codec.r_int d in
  let seed' = Codec.r_int d in
  let rate' = Codec.r_int d in
  let width' = Codec.r_int d in
  let slots' = Codec.r_int d in
  let epoch' = Codec.r_int d in
  let entries =
    Codec.r_list d (fun d ->
        let name = Codec.r_str d in
        match Codec.r_int d with
        | 0 -> (name, `C (Codec.r_int d))
        | 1 -> (name, `G (Codec.r_int d))
        | 2 -> (name, `H (r_hist_payload d))
        | k ->
            invalid_arg
              (Printf.sprintf "Trace.restore_state: instrument kind %d" k))
  in
  let alerts = Codec.r_list d Codec.r_str in
  let snaps = Codec.r_list d r_snap in
  (* decode succeeded in full; now mutate *)
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | Counter c -> c.c_v <- 0
      | Gauge g -> g.g_v <- 0
      | Histogram h ->
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- 0;
          h.h_max <- 0;
          Array.fill h.h_b 0 hist_buckets 0)
    registry;
  List.iter
    (fun (name, payload) ->
      match payload with
      | `C v -> (counter name).c_v <- v
      | `G v -> (gauge name).g_v <- v
      | `H ((count, sum, mn, mx), bkts) ->
          let h = histogram name in
          h.h_count <- count;
          h.h_sum <- sum;
          h.h_min <- mn;
          h.h_max <- mx;
          Array.blit bkts 0 h.h_b 0 hist_buckets)
    entries;
  let cap = Array.length !ring in
  Array.fill !ring 0 cap None;
  ring_head := 0;
  ring_len := 0;
  ring_dropped := 0;
  depth := 0;
  logical := logical';
  last_tick := last_tick';
  next_req := next_req';
  cur_req := cur_req';
  sample_seed := seed';
  sample_rate := rate';
  w_width := width';
  w_slots := slots';
  w_epoch := epoch';
  alert_table := [];
  List.iter
    (fun l ->
      match install_alert l with
      | Ok _ -> ()
      | Error e ->
          invalid_arg (Printf.sprintf "Trace.restore_state: alert %S: %s" l e))
    alerts;
  w_snaps := snaps
