(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

(* The default clock is logical: each reading advances it one
   microsecond, so a scripted session produces the same timestamps on
   every run.  Benchmarks swap in a wall clock with [set_clock]. *)

let logical = ref 0

let logical_clock () =
  incr logical;
  !logical

let clock = ref logical_clock
let set_clock f = clock := f
let use_logical_clock () = clock := logical_clock
let now_us () = !clock ()

(* Model waiting (a client timeout, retry backoff, injected latency) by
   jumping the logical clock forward.  An injected wall clock keeps its
   own time, so this is a no-op under [set_clock]. *)
let advance n = if n > 0 then logical := !logical + n

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type counter = { mutable c_v : int }
type gauge = { mutable g_v : int }

(* Histograms keep geometric buckets (quarter-octave resolution) next
   to the running count/sum/min/max, so percentiles can be read without
   storing observations.  Values 0..3 get exact buckets; a value v >= 4
   with 2^o <= v < 2^(o+1) lands in one of four sub-buckets of its
   octave, giving a relative error bound of 2^(o-2)/2^o = 25% on any
   reported quantile. *)
let hist_buckets = 256

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_b : int array;  (* bucket occupancy, [hist_buckets] slots *)
}

let bucket_of v =
  if v <= 3 then max 0 v
  else begin
    (* octave o: 2^o <= v < 2^(o+1); quarter: next two bits down *)
    let o = ref 2 in
    while v lsr (!o + 1) > 0 do
      incr o
    done;
    let q = (v lsr (!o - 2)) land 3 in
    min (hist_buckets - 1) ((!o - 1) * 4 + q)
  end

(* Upper bound of a bucket — the pessimistic representative, so a
   reported percentile never understates the observed latency. *)
let bucket_upper i =
  if i <= 3 then i
  else
    let o = (i / 4) + 1 in
    let q = i mod 4 in
    (1 lsl o) + ((q + 1) * (1 lsl (o - 2))) - 1

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Trace: %s is already registered as another kind" name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> kind_clash name
  | None ->
      let c = { c_v = 0 } in
      Hashtbl.replace registry name (Counter c);
      c

let incr ?(by = 1) c = c.c_v <- c.c_v + by
let value c = c.c_v

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> kind_clash name
  | None ->
      let g = { g_v = 0 } in
      Hashtbl.replace registry name (Gauge g);
      g

let set_gauge g v = g.g_v <- v
let gauge_value g = g.g_v

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> kind_clash name
  | None ->
      let h =
        { h_count = 0; h_sum = 0; h_min = 0; h_max = 0;
          h_b = Array.make hist_buckets 0 }
      in
      Hashtbl.replace registry name (Histogram h);
      h

let observe h v =
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  h.h_b.(bucket_of v) <- h.h_b.(bucket_of v) + 1

let histogram_stats h = (h.h_count, h.h_sum, h.h_min, h.h_max)

(* The value at or below which [p] percent of observations fall, read
   from the buckets: the upper bound of the bucket holding the rank
   (clamped to the observed max, which is exact).  0 before any
   observation. *)
let percentile h p =
  if h.h_count = 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int h.h_count)))
    in
    let acc = ref 0 and i = ref 0 and found = ref h.h_max in
    (try
       while !i < hist_buckets do
         acc := !acc + h.h_b.(!i);
         if !acc >= rank then begin
           found := bucket_upper !i;
           raise Exit
         end;
         i := !i + 1
       done
     with Exit -> ());
    min !found h.h_max
  end

let stats_text () =
  let lines =
    Hashtbl.fold
      (fun name inst acc ->
        match inst with
        | Counter c -> (name, c.c_v) :: acc
        | Gauge g -> (name, g.g_v) :: acc
        | Histogram h ->
            (name ^ ".count", h.h_count)
            :: (name ^ ".sum", h.h_sum)
            :: (name ^ ".min", h.h_min)
            :: (name ^ ".max", h.h_max)
            :: acc)
      registry []
  in
  let b = Buffer.create 512 in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" k v))
    (List.sort compare lines);
  Buffer.contents b

let find_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some c.c_v
  | Some (Gauge g) -> Some g.g_v
  | _ -> None

let find_prefix prefix =
  let plen = String.length prefix in
  let matches name =
    String.length name >= plen && String.sub name 0 plen = prefix
  in
  Hashtbl.fold
    (fun name inst acc ->
      if not (matches name) then acc
      else
        match inst with
        | Counter c -> (name, c.c_v) :: acc
        | Gauge g -> (name, g.g_v) :: acc
        | Histogram _ -> acc)
    registry []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Span ring                                                           *)

type span = {
  sp_name : string;
  sp_start : int;
  sp_dur : int;
  sp_depth : int;
  sp_args : (string * string) list;
}

(* Circular buffer of completed spans; overflow drops the oldest. *)
let default_capacity = 4096
let ring = ref (Array.make default_capacity None)
let ring_head = ref 0  (* index of the oldest buffered span *)
let ring_len = ref 0
let ring_dropped = ref 0  (* since the last drain *)
let dropped_total = counter "trace.spans.dropped"
let depth = ref 0

let set_ring_capacity n =
  let n = max 1 n in
  ring := Array.make n None;
  ring_head := 0;
  ring_len := 0

let ring_capacity () = Array.length !ring
let pending_spans () = !ring_len

let record sp =
  let cap = Array.length !ring in
  if !ring_len = cap then begin
    (* overwrite the oldest *)
    !ring.(!ring_head) <- Some sp;
    ring_head := (!ring_head + 1) mod cap;
    Stdlib.incr ring_dropped;
    incr dropped_total
  end
  else begin
    !ring.((!ring_head + !ring_len) mod cap) <- Some sp;
    Stdlib.incr ring_len
  end

let drain () =
  let cap = Array.length !ring in
  let spans =
    List.init !ring_len (fun i ->
        match !ring.((!ring_head + i) mod cap) with
        | Some sp -> sp
        | None -> assert false)
  in
  Array.fill !ring 0 cap None;
  ring_head := 0;
  ring_len := 0;
  let d = !ring_dropped in
  ring_dropped := 0;
  (spans, d)

let with_span_result name f =
  let d = !depth in
  depth := d + 1;
  let start = now_us () in
  let finish args =
    depth := d;
    record
      { sp_name = name; sp_start = start; sp_dur = now_us () - start;
        sp_depth = d; sp_args = args }
  in
  match f () with
  | v, args ->
      finish args;
      v
  | exception e ->
      finish [ ("error", Printexc.to_string e) ];
      raise e

let with_span ?(args = []) name f =
  with_span_result name (fun () -> (f (), args))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let spans_text ?(dropped = 0) spans =
  let b = Buffer.create 512 in
  List.iter
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf "%d +%d %s%s" sp.sp_start sp.sp_dur
           (String.make (2 * sp.sp_depth) ' ')
           sp.sp_name);
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v))
        sp.sp_args;
      Buffer.add_char b '\n')
    spans;
  if dropped > 0 then
    Buffer.add_string b (Printf.sprintf "# %d spans dropped\n" dropped);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let spans_json spans =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d"
           (json_escape sp.sp_name) sp.sp_start sp.sp_dur (sp.sp_depth + 1));
      if sp.sp_args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          sp.sp_args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    spans;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let reset () =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | Counter c -> c.c_v <- 0
      | Gauge g -> g.g_v <- 0
      | Histogram h ->
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- 0;
          h.h_max <- 0;
          Array.fill h.h_b 0 hist_buckets 0)
    registry;
  let cap = Array.length !ring in
  Array.fill !ring 0 cap None;
  ring_head := 0;
  ring_len := 0;
  ring_dropped := 0;
  depth := 0;
  logical := 0
