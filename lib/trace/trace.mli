(** The observability subsystem: a span tracer and a metrics registry.

    The paper's whole evaluation is measurement — click counts, lines
    of code, connectivity curves — and its central mechanism is "the
    application interface is a file server".  This module is the single
    ledger behind both: every hot path (drawing, layout, analysis
    caches, the 9P server, command execution, the namespace) reports
    here, and [Help_srv] serves the result back through the paper's own
    interface as [/mnt/help/stats], [/mnt/help/trace],
    [/mnt/help/metrics] and [/mnt/help/alerts], so a session's shell
    can literally [cat /mnt/help/stats].

    Everything is process-global: instruments are registered by name
    (find-or-create), and components that need per-instance views keep
    a base snapshot and report deltas.  The default clock is logical —
    it advances by one microsecond per reading — so traces of a
    scripted session are deterministic; benchmarks inject a wall clock
    with {!set_clock}. *)

(** {1 Clock} *)

(** Replace the clock with [f], a monotonic microsecond counter. *)
val set_clock : (unit -> int) -> unit

(** Restore the default deterministic logical clock (1 us per reading). *)
val use_logical_clock : unit -> unit

(** Read the clock (advances the logical clock by one tick).  Every
    reading also drives the rolling-window machinery: crossing a window
    boundary snapshots the registry (see {!window_series}). *)
val now_us : unit -> int

(** The logical clock's current position, without a reading: no
    advance, no window tick.  The WAL stamps records with this so that
    attaching a log is clock-transparent — a session with a log keeps
    the same timestamps as one without. *)
val logical_now : unit -> int

(** Jump the logical clock forward [n] microseconds without a reading —
    how deterministic components model waiting (client RPC timeouts and
    retry backoff, injected transport latency).  No effect on a clock
    installed with {!set_clock}.  A jump larger than the whole rolling
    window expires every open slot. *)
val advance : int -> unit

(** {1 Counters} *)

type counter

(** Find or create the registered counter [name].
    @raise Invalid_argument if [name] is registered as another kind. *)
val counter : string -> counter

val incr : ?by:int -> counter -> unit
val value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram

(** Record one observation (microseconds, or any unit-free value). *)
val observe : histogram -> int -> unit

(** [(count, sum, min, max)]; [(0, 0, 0, 0)] before any observation. *)
val histogram_stats : histogram -> int * int * int * int

(** [percentile h p] is the value at or below which [p] percent of the
    observations fall (e.g. [percentile h 99.] is p99), read from
    quarter-octave geometric buckets: within 25% relative error, never
    understating, exact at the observed maximum.  [0] before any
    observation; [p] is clamped to [0..100]. *)
val percentile : histogram -> float -> int

(** {1 Registry snapshot} *)

(** Every registered instrument, one metric per line, [key value],
    sorted by key.  Histograms expand to [.count]/[.sum]/[.min]/[.max]
    lines.  This is the content of [/mnt/help/stats]. *)
val stats_text : unit -> string

(** Prometheus-style text exposition of the whole registry, sorted by
    family: counters as [name_total], gauges bare, histograms as
    cumulative [name_bucket{le="..."}] plus [name_sum]/[name_count],
    and a [name_window] summary family carrying p50/p95/p99 over the
    most recently closed rolling-window slot (whole-run percentiles
    before the first slot closes).  Dots in registry names become
    underscores.  Derived only from the registry and the logical-clock
    windows — never from GC or wall-clock state — so two identically
    scripted sessions produce byte-identical text.  This is the content
    of [/mnt/help/metrics]. *)
val metrics_text : unit -> string

(** Current value of a registered counter or gauge by name. *)
val find_value : string -> int option

(** All registered counters and gauges whose name starts with the given
    prefix, sorted by name — e.g. [find_prefix "nine.conn."] collects
    the per-connection serving stats.  Histograms are omitted (use
    {!histogram_stats}). *)
val find_prefix : string -> (string * int) list

(** {1 Request context and head sampling}

    The serving layer allocates a request id per RPC at scheduler
    submit time and decides {e then} — head sampling — whether the
    request's spans are recorded.  The verdict is a pure function of
    [(seed, id)], so a same-seed rerun samples exactly the same
    requests; ids restart from 1 at {!reset}, so scripted sessions
    allocate identical ids on every run. *)

(** Allocate the next request id (1, 2, 3, ...). *)
val request_id : unit -> int

(** [sample id] is the deterministic head-sampling verdict for a
    request id under the current [(seed, rate)]: rate 0 samples
    nothing, rate 1 everything (the default — right for an interactive
    session), rate [n] roughly one request in [n]. *)
val sample : int -> bool

(** Set the sampling seed and/or rate (rate is clamped to [>= 0]).
    {!reset} restores seed 0, rate 1. *)
val set_sampling : ?seed:int -> ?rate:int -> unit -> unit

(** Current [(seed, rate)]. *)
val sampling : unit -> int * int

(** [with_request ~reqid name f] runs [f] inside a span as
    {!with_span}, additionally tagging every span recorded during [f]
    — the whole nested tree — with [reqid] (see {!request_text}). *)
val with_request :
  reqid:int -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** The request id spans are currently being tagged with (0 outside any
    {!with_request}). *)
val current_request : unit -> int

(** {1 Spans} *)

type span = {
  sp_name : string;
  sp_start : int;  (** clock reading at entry, microseconds *)
  sp_dur : int;  (** duration in microseconds *)
  sp_depth : int;  (** nesting depth at entry, 0 = top level *)
  sp_req : int;  (** owning request id, 0 = none *)
  sp_args : (string * string) list;
}

(** [with_span name f] runs [f] inside a span; the span is recorded
    (into the bounded ring) when [f] returns or raises. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Like {!with_span} for args only known at exit: [f] returns the
    result and the args to record (e.g. cache hits during the span). *)
val with_span_result :
  string -> (unit -> 'a * (string * string) list) -> 'a

(** {1 The span ring}

    Completed spans land in a bounded ring buffer; when it overflows,
    the oldest spans are dropped and counted (also visible as the
    [trace.spans.dropped] counter). *)

val set_ring_capacity : int -> unit
val ring_capacity : unit -> int

(** Number of spans currently buffered. *)
val pending_spans : unit -> int

(** Remove and return all buffered spans, oldest first, together with
    the number dropped to overflow since the previous drain.  Reading
    [/mnt/help/trace] is a drain. *)
val drain : unit -> span list * int

(** Like {!drain} but non-destructive: the ring and the drop tally are
    left untouched.  Reading [/mnt/help/trace/last] is a peek. *)
val peek : unit -> span list * int

(** {1 Per-request span trees} *)

(** Distinct request ids with at least one span still buffered, in
    order of first appearance (oldest request first). *)
val requests : unit -> int list

(** All buffered spans tagged with the request id, sorted into preorder
    (by start time, parents before children). *)
val request_spans : int -> span list

(** The request's span tree rendered as {!spans_text}; [None] when no
    buffered span carries the id (never sampled, or already evicted or
    drained).  This is the content of [/mnt/help/trace/<reqid>]. *)
val request_text : int -> string option

(** {1 Exporters} *)

(** Human-readable, one span per line ([start +dur name k=v ...]),
    indented by nesting depth; a final [# N spans dropped] line marks
    ring overflow. *)
val spans_text : ?dropped:int -> span list -> string

(** Chrome trace-event JSON (load in [chrome://tracing] or Perfetto):
    an object with a [traceEvents] array of complete ([ph:"X"])
    events. *)
val spans_json : span list -> string

(** {1 Rolling windows}

    Time — whatever clock is active — is divided into fixed-width
    epochs; the first reading past a boundary snapshots the whole
    registry, and a bounded ring of recent snapshots turns any counter
    into a per-slot rate and any histogram into per-slot quantiles by
    differencing consecutive snapshots.  Windows are pure views over
    the registry: nothing is double-counted, and an idle period simply
    produces no snapshots.  Snapshot count is bounded by the slot
    count; a clock jump past the whole window expires every old slot
    (counted on [trace.window.rolls] as boundary crossings). *)

(** Set the slot width in microseconds and/or the number of retained
    slots (both clamped to [>= 1]), and restart the window from the
    current clock reading.  {!reset} restores the defaults (65536 us,
    16 slots). *)
val window_configure : ?width:int -> ?slots:int -> unit -> unit

val window_width : unit -> int
val window_slots : unit -> int

(** Per-slot deltas of a counter or gauge, oldest first, as
    [(slot, delta)] where [slot * width] is the slot's start time.
    Empty until two boundary crossings have been observed. *)
val window_series : string -> (int * int) list

(** Per-slot histogram quantiles, oldest first:
    [(slot, count, p50, p95, p99)].  Quantiles of an empty slot are 0;
    delta quantiles are clamped to the highest occupied bucket bound
    (the exact observed max is not known per-slot). *)
val window_quantiles : string -> (int * int * int * int * int) list

(** Per-slot GC activity, oldest first:
    [(slot, minor_words, major_collections)].  The only window data
    derived from the process rather than the registry — reported here
    and deliberately kept out of {!metrics_text}. *)
val window_gc : unit -> (int * int * int) list

(** {1 Alerts}

    A small threshold-watch table over the ledger, evaluated only when
    read.  A rule is one line:

    {v name: source op threshold v}

    where [source] is [value(metric)] (current counter/gauge value),
    [rate(metric)] (last closed window slot's delta), or [pNN(metric)]
    (histogram percentile over the last closed slot, whole-run before
    one closes), and [op] is [>], [>=], [<] or [<=].  The rendered
    table is the content of [/mnt/help/alerts]. *)

type alert

(** Parse one rule line; [Error] carries a human-readable reason. *)
val parse_alert : string -> (alert, string) result

(** Install a rule, replacing any rule with the same name. *)
val add_alert : alert -> unit

(** [parse_alert] + [add_alert] in one step. *)
val install_alert : string -> (alert, string) result

(** The installed rules rendered back to their line form, in table
    order — each line round-trips through {!parse_alert}. *)
val alert_rules : unit -> string list

(** One line per rule: [name ok|firing current source op threshold],
    preceded by a [#] header line.  This is the content of
    [/mnt/help/alerts]. *)
val alerts_text : unit -> string

(** The rule lines [Session.boot] installs: p99 RPC latency,
    backpressure stalls, journal drops, span drops. *)
val default_alerts : string list

(** Install {!default_alerts}. *)
val install_default_alerts : unit -> unit

(** {1 Reset}

    Zero every registered instrument, empty the ring, restart the
    logical clock and the request-id allocator, restore default
    sampling (seed 0, rate 1) and window geometry, clear the alert
    table, and re-seed the window baseline snapshot.  Registrations
    survive (handles held by modules stay valid).  [Session.boot]
    resets so each session starts a fresh ledger. *)
val reset : unit -> unit

(** {1 State capture}

    Crash recovery restores the ledger of the crashed session so the
    recovered one continues it exactly: clock position, request-id
    allocator, sampling, window geometry/epoch, every instrument's
    value, the alert table, and the retained window snapshots.  The
    span ring is deliberately not captured — recovery restarts with an
    empty ring. *)

(** Serialize the full ledger state ({!Codec} format). *)
val save_state : unit -> string

(** Restore a {!save_state} capture: decode in full first (raising
    [Codec.Truncated] or [Invalid_argument] without touching anything
    on a bad input), then overwrite the ledger.  Instruments absent
    from the capture are zeroed; the span ring is emptied. *)
val restore_state : string -> unit
