(** The observability subsystem: a span tracer and a metrics registry.

    The paper's whole evaluation is measurement — click counts, lines
    of code, connectivity curves — and its central mechanism is "the
    application interface is a file server".  This module is the single
    ledger behind both: every hot path (drawing, layout, analysis
    caches, the 9P server, command execution, the namespace) reports
    here, and [Help_srv] serves the result back through the paper's own
    interface as [/mnt/help/stats] and [/mnt/help/trace], so a
    session's shell can literally [cat /mnt/help/stats].

    Everything is process-global: instruments are registered by name
    (find-or-create), and components that need per-instance views keep
    a base snapshot and report deltas.  The default clock is logical —
    it advances by one microsecond per reading — so traces of a
    scripted session are deterministic; benchmarks inject a wall clock
    with {!set_clock}. *)

(** {1 Clock} *)

(** Replace the clock with [f], a monotonic microsecond counter. *)
val set_clock : (unit -> int) -> unit

(** Restore the default deterministic logical clock (1 us per reading). *)
val use_logical_clock : unit -> unit

(** Read the clock (advances the logical clock by one tick). *)
val now_us : unit -> int

(** Jump the logical clock forward [n] microseconds without a reading —
    how deterministic components model waiting (client RPC timeouts and
    retry backoff, injected transport latency).  No effect on a clock
    installed with {!set_clock}. *)
val advance : int -> unit

(** {1 Counters} *)

type counter

(** Find or create the registered counter [name].
    @raise Invalid_argument if [name] is registered as another kind. *)
val counter : string -> counter

val incr : ?by:int -> counter -> unit
val value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram

(** Record one observation (microseconds, or any unit-free value). *)
val observe : histogram -> int -> unit

(** [(count, sum, min, max)]; [(0, 0, 0, 0)] before any observation. *)
val histogram_stats : histogram -> int * int * int * int

(** [percentile h p] is the value at or below which [p] percent of the
    observations fall (e.g. [percentile h 99.] is p99), read from
    quarter-octave geometric buckets: within 25% relative error, never
    understating, exact at the observed maximum.  [0] before any
    observation. *)
val percentile : histogram -> float -> int

(** {1 Registry snapshot} *)

(** Every registered instrument, one metric per line, [key value],
    sorted by key.  Histograms expand to [.count]/[.sum]/[.min]/[.max]
    lines.  This is the content of [/mnt/help/stats]. *)
val stats_text : unit -> string

(** Current value of a registered counter or gauge by name. *)
val find_value : string -> int option

(** All registered counters and gauges whose name starts with the given
    prefix, sorted by name — e.g. [find_prefix "nine.conn."] collects
    the per-connection serving stats.  Histograms are omitted (use
    {!histogram_stats}). *)
val find_prefix : string -> (string * int) list

(** {1 Spans} *)

type span = {
  sp_name : string;
  sp_start : int;  (** clock reading at entry, microseconds *)
  sp_dur : int;  (** duration in microseconds *)
  sp_depth : int;  (** nesting depth at entry, 0 = top level *)
  sp_args : (string * string) list;
}

(** [with_span name f] runs [f] inside a span; the span is recorded
    (into the bounded ring) when [f] returns or raises. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Like {!with_span} for args only known at exit: [f] returns the
    result and the args to record (e.g. cache hits during the span). *)
val with_span_result :
  string -> (unit -> 'a * (string * string) list) -> 'a

(** {1 The span ring}

    Completed spans land in a bounded ring buffer; when it overflows,
    the oldest spans are dropped and counted (also visible as the
    [trace.spans.dropped] counter). *)

val set_ring_capacity : int -> unit
val ring_capacity : unit -> int

(** Number of spans currently buffered. *)
val pending_spans : unit -> int

(** Remove and return all buffered spans, oldest first, together with
    the number dropped to overflow since the previous drain.  Reading
    [/mnt/help/trace] is a drain. *)
val drain : unit -> span list * int

(** {1 Exporters} *)

(** Human-readable, one span per line ([start +dur name k=v ...]),
    indented by nesting depth; a final [# N spans dropped] line marks
    ring overflow. *)
val spans_text : ?dropped:int -> span list -> string

(** Chrome trace-event JSON (load in [chrome://tracing] or Perfetto):
    an object with a [traceEvents] array of complete ([ph:"X"])
    events. *)
val spans_json : span list -> string

(** {1 Reset}

    Zero every registered instrument, empty the ring, and restart the
    logical clock.  Registrations survive (handles held by modules stay
    valid).  [Session.boot] resets so each session starts a fresh
    ledger. *)
val reset : unit -> unit
