(* One search driver for every text-scanning caller (help body search,
   grep, ed, cbr's uses-vs-grep experiment).  Strings go through
   Regexp's prefilter+DFA pipeline directly; ropes are streamed leaf by
   leaf through Regexp.Scan/Stream so nothing is flattened. *)

type needle = Literal of string | Pattern of Regexp.t

let find nd ?(start = 0) s =
  match nd with
  | Literal sub -> (
      match Hstr.find ~start s ~sub with
      | Some i -> Some (i, i + String.length sub)
      | None -> None)
  | Pattern re -> Regexp.search re s start

let matches nd s =
  match nd with
  | Literal sub -> Hstr.contains s ~sub
  | Pattern re -> Regexp.matches re s

exception Found of int

(* Leftmost occurrence of [sub] in the rope at or after [start],
   without flattening.  A rolling tail of the last [m-1] bytes is kept
   across chunks so occurrences straddling leaf boundaries (possibly
   spanning several short leaves) are caught: each chunk first checks
   the window [tail ^ head-of-chunk] for occurrences starting in the
   tail, then scans its own bytes.  Any straddling occurrence starts
   after every in-chunk occurrence of the previous chunk, so the first
   hit is the leftmost. *)
let find_literal_rope ?(start = 0) rope sub =
  let n = Rope.length rope in
  let start = max 0 start in
  let m = String.length sub in
  if start > n then None
  else if m = 0 then Some (start, start)
  else if start + m > n then None
  else begin
    let tail = ref "" in
    let abs = ref start in
    (* absolute offset of the next unprocessed byte *)
    try
      Rope.iter_chunks rope ~pos:start ~len:(n - start) (fun s off len ->
          let tl = String.length !tail in
          if tl > 0 then begin
            let head = min (m - 1) len in
            let w = !tail ^ String.sub s off head in
            match Hstr.find w ~sub with
            | Some j when j < tl -> raise (Found (!abs - tl + j))
            | _ -> ()
          end;
          (match Hstr.find s ~start:off ~sub with
          | Some j when j + m <= off + len -> raise (Found (!abs + (j - off)))
          | _ -> ());
          let keep = min (m - 1) (tl + len) in
          let from_chunk = min len keep in
          let from_tail = keep - from_chunk in
          let b = Buffer.create (max keep 1) in
          if from_tail > 0 then
            Buffer.add_substring b !tail (tl - from_tail) from_tail;
          Buffer.add_substring b s (off + len - from_chunk) from_chunk;
          tail := Buffer.contents b;
          abs := !abs + len);
      None
    with Found a -> Some (a, a + m)
  end

let rope_bol rope pos = pos = 0 || Rope.get rope (pos - 1) = '\n'

let matches_rope re rope =
  let n = Rope.length rope in
  let lit = Regexp.required_literal re in
  if lit <> "" && find_literal_rope rope lit = None then false
  else begin
    let sc = Regexp.Scan.create ~bol:true re in
    let matched = ref false in
    (try
       Rope.iter_chunks rope ~pos:0 ~len:n (fun s off len ->
           if Regexp.Scan.feed sc s ~pos:off ~len then raise Exit)
     with Exit -> matched := true);
    !matched || Regexp.Scan.finish sc
  end

(* Leftmost-longest match in the rope at or after [pos]: literal
   prefilter, then a streaming DFA existence pass, then the streaming
   NFA sweep for the exact span — the rope twin of [Regexp.search]. *)
let search_rope re rope pos =
  let n = Rope.length rope in
  let pos = max 0 pos in
  if pos > n then None
  else begin
    let lit = Regexp.required_literal re in
    if lit <> "" && find_literal_rope ~start:pos rope lit = None then None
    else begin
      let bol = rope_bol rope pos in
      let sc = Regexp.Scan.create ~bol re in
      let matched = ref false in
      (try
         Rope.iter_chunks rope ~pos ~len:(n - pos) (fun s off len ->
             if Regexp.Scan.feed sc s ~pos:off ~len then raise Exit)
       with Exit -> matched := true);
      if not (!matched || Regexp.Scan.finish sc) then None
      else begin
        let cu = Regexp.Stream.create ~pos ~bol re in
        (try
           Rope.iter_chunks rope ~pos ~len:(n - pos) (fun s off len ->
               Regexp.Stream.feed cu s ~pos:off ~len;
               if Regexp.Stream.definite cu then raise Exit)
         with Exit -> ());
        Regexp.Stream.finish cu
      end
    end
  end

let find_rope nd ?(start = 0) rope =
  match nd with
  | Literal sub -> find_literal_rope ~start rope sub
  | Pattern re -> search_rope re rope start

let search_all_rope re rope =
  let n = Rope.length rope in
  let rec loop pos acc =
    if pos > n then List.rev acc
    else
      match search_rope re rope pos with
      | None -> List.rev acc
      | Some (a, b) ->
          let next = if b > a then b else a + 1 in
          loop next ((a, b) :: acc)
  in
  loop 0 []

let wrapped_find find start =
  match find start with
  | Some _ as r -> r
  | None -> if start = 0 then None else find 0

(* The one substitution loop behind sed and ed, parameterized over
   their (differing) empty-match rules: [empty_ok] false skips the
   whole substitution when the first match is empty; [empty_advance]
   is how far past an empty match the next scan starts (beyond the
   replacement text); [limit] bounds the number of replacements so
   nullable patterns with [global] terminate.  Returns the new line
   and the replacement count. *)
let subst re ~repl ~global ~empty_ok ~empty_advance ?(limit = max_int) line =
  let rl = String.length repl in
  let rec loop l pos count =
    if count >= limit then (l, count)
    else
      match Regexp.search re l pos with
      | Some (a, b) when b > a || empty_ok ->
          let l' =
            String.sub l 0 a ^ repl ^ String.sub l b (String.length l - b)
          in
          let count = count + 1 in
          if global then
            loop l' (a + rl + if b = a then empty_advance else 0) count
          else (l', count)
      | _ -> (l, count)
  in
  loop line 0 0

let count_matching_lines nd content =
  List.fold_left
    (fun acc line -> if matches nd line then acc + 1 else acc)
    0
    (String.split_on_char '\n' content)
