(** The shared search driver.  Every module that scans text — the body
    search behind right-click, [grep], [ed]'s addresses and [s]///,
    the cbr uses-vs-grep experiment — goes through here, so all of
    them get {!Regexp}'s literal prefilter, lazy DFA, and (for ropes)
    the streaming path that never flattens the buffer. *)

(** What to look for: a fixed string or a compiled pattern. *)
type needle = Literal of string | Pattern of Regexp.t

(** [find nd ?start s] — leftmost occurrence at or after [start] as
    [(start, stop)], [stop] exclusive.  Patterns are leftmost-longest;
    an empty literal matches at [start]. *)
val find : needle -> ?start:int -> string -> (int * int) option

val matches : needle -> string -> bool

(** Rope variants stream leaf chunks; the rope is never flattened. *)

val find_rope : needle -> ?start:int -> Rope.t -> (int * int) option

(** [search_rope re rope pos] — the rope twin of [Regexp.search]:
    identical [(start, stop)] results, streaming execution. *)
val search_rope : Regexp.t -> Rope.t -> int -> (int * int) option

val matches_rope : Regexp.t -> Rope.t -> bool

(** All non-overlapping leftmost-longest matches (agrees with
    [Regexp.search_all] on the flattened text). *)
val search_all_rope : Regexp.t -> Rope.t -> (int * int) list

(** [wrapped_find f start] — [f start], wrapping around to [f 0] when
    that fails and [start > 0] (the interactive search order). *)
val wrapped_find : (int -> (int * int) option) -> int -> (int * int) option

(** [subst re ~repl ~global ~empty_ok ~empty_advance ?limit line] —
    the substitution loop shared by sed and ed, returning the new line
    and the number of replacements made.  [empty_ok] false aborts when
    the first match is empty (sed's non-global rule); [empty_advance]
    is the extra scan advance after replacing an empty match (ed uses
    1, sed 0); [limit] caps replacements so nullable global patterns
    terminate. *)
val subst :
  Regexp.t ->
  repl:string ->
  global:bool ->
  empty_ok:bool ->
  empty_advance:int ->
  ?limit:int ->
  string ->
  string * int

(** Lines of [content] (split on '\n') matching the needle. *)
val count_matching_lines : needle -> string -> int
