(* Shared substring search.

   Several modules (screen dumps, tag tokens, body search, grep, the
   bench harness) used to re-implement the same naive scan, each one
   allocating a [String.sub] per candidate position — O(n*m) time and
   O(n*m) garbage on megabyte inputs.  This is the one copy: the outer
   loop skips with [String.index_from_opt] (a memchr) and the inner
   comparison walks bytes without allocating. *)

let find ?(start = 0) hay ~sub =
  let n = String.length sub and m = String.length hay in
  let start = max 0 start in
  if n = 0 then if start <= m then Some start else None
  else begin
    let c0 = sub.[0] in
    let rec eq j k = k = n || (hay.[j + k] = sub.[k] && eq j (k + 1)) in
    let rec go i =
      if i + n > m then None
      else
        match String.index_from_opt hay i c0 with
        | None -> None
        | Some j ->
            if j + n > m then None else if eq j 1 then Some j else go (j + 1)
    in
    go start
  end

let contains hay ~sub = find hay ~sub <> None

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n
  &&
  let rec eq i = i = n || (s.[i] = prefix.[i] && eq (i + 1)) in
  eq 0

let ends_with ~suffix s =
  let n = String.length suffix and m = String.length s in
  m >= n
  &&
  let rec eq i = i = n || (s.[m - n + i] = suffix.[i] && eq (i + 1)) in
  eq 0
