(** Allocation-free substring search, shared by every module that used
    to re-implement the naive O(n*m) scan (screen dumps, tag tokens,
    body search, grep, the bench harness). *)

(** [find ?start hay ~sub] is the offset of the first occurrence of
    [sub] at or after [start] ([Some start] when [sub] is empty and
    [start] is in range). *)
val find : ?start:int -> string -> sub:string -> int option

val contains : string -> sub:string -> bool
val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool
