(* Recursive-descent recognizer for the RFC 8259 grammar.  Positions
   thread through explicitly; [None] means a syntax error. *)

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let well_formed s =
  let n = String.length s in
  let rec skip i = if i < n && is_ws s.[i] then skip (i + 1) else i in
  let lit word i =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then Some (i + l) else None
  in
  let string_at i =
    (* [i] is at the opening quote *)
    if i >= n || s.[i] <> '"' then None
    else
      let rec go i =
        if i >= n then None
        else
          match s.[i] with
          | '"' -> Some (i + 1)
          | '\\' ->
              if i + 1 >= n then None
              else (
                match s.[i + 1] with
                | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go (i + 2)
                | 'u' ->
                    if
                      i + 5 < n && is_hex s.[i + 2] && is_hex s.[i + 3]
                      && is_hex s.[i + 4] && is_hex s.[i + 5]
                    then go (i + 6)
                    else None
                | _ -> None)
          | c when Char.code c < 0x20 -> None
          | _ -> go (i + 1)
      in
      go (i + 1)
  in
  let number_at i =
    let i = if i < n && s.[i] = '-' then i + 1 else i in
    let digits i =
      if i < n && is_digit s.[i] then
        let rec go i = if i < n && is_digit s.[i] then go (i + 1) else i in
        Some (go i)
      else None
    in
    let int_part =
      if i < n && s.[i] = '0' then Some (i + 1) else digits i
    in
    match int_part with
    | None -> None
    | Some i ->
        let i =
          if i + 1 < n && s.[i] = '.' && is_digit s.[i + 1] then
            Option.get (digits (i + 1))
          else i
        in
        if i < n && (s.[i] = 'e' || s.[i] = 'E') then
          let j = i + 1 in
          let j = if j < n && (s.[j] = '+' || s.[j] = '-') then j + 1 else j in
          digits j
        else Some i
  in
  let rec value i =
    let i = skip i in
    if i >= n then None
    else
      match s.[i] with
      | '{' -> members (skip (i + 1)) ~first:true
      | '[' -> elements (skip (i + 1)) ~first:true
      | '"' -> string_at i
      | 't' -> lit "true" i
      | 'f' -> lit "false" i
      | 'n' -> lit "null" i
      | '-' -> number_at i
      | c when is_digit c -> number_at i
      | _ -> None
  and members i ~first =
    if i < n && s.[i] = '}' then Some (i + 1)
    else
      let i = if first then Some i else if i < n && s.[i] = ',' then Some (skip (i + 1)) else None in
      match i with
      | None -> None
      | Some i -> (
          match string_at i with
          | None -> None
          | Some i -> (
              let i = skip i in
              if i >= n || s.[i] <> ':' then None
              else
                match value (i + 1) with
                | None -> None
                | Some i -> members (skip i) ~first:false))
  and elements i ~first =
    if i < n && s.[i] = ']' then Some (i + 1)
    else
      let i = if first then Some i else if i < n && s.[i] = ',' then Some (skip (i + 1)) else None in
      match i with
      | None -> None
      | Some i -> (
          match value i with
          | None -> None
          | Some i -> elements (skip i) ~first:false)
  in
  match value 0 with Some i -> skip i = n | None -> false
