(** A strict JSON well-formedness checker (RFC 8259 grammar, no value
    construction).  Used by the trace tests and the bench smoke gate to
    validate the Chrome trace-event export without a JSON library
    dependency. *)

(** Does [s] consist of exactly one well-formed JSON value (plus
    surrounding whitespace)? *)
val well_formed : string -> bool
