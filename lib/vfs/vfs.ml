type error =
  | Enonexist
  | Enotdir
  | Eisdir
  | Eexist
  | Eperm
  | Ebadname
  | Eio of string

exception Error of error

let error_message = function
  | Enonexist -> "file does not exist"
  | Enotdir -> "not a directory"
  | Eisdir -> "is a directory"
  | Eexist -> "file already exists"
  | Eperm -> "permission denied"
  | Ebadname -> "bad path element"
  | Eio msg -> msg

let err e = raise (Error e)

type mode = Read | Write | Rdwr

type stat = {
  st_name : string;
  st_dir : bool;
  st_length : int;
  st_mtime : int;
  st_version : int;
}

type openfile = {
  of_read : off:int -> count:int -> string;
  of_write : off:int -> string -> int;
  of_close : unit -> unit;
}

type filesystem = {
  fs_stat : string list -> stat;
  fs_open : string list -> mode -> trunc:bool -> openfile;
  fs_create : string list -> dir:bool -> unit;
  fs_remove : string list -> unit;
  fs_readdir : string list -> stat list;
}

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

let split_path path =
  let parts = String.split_on_char '/' path in
  let rec resolve acc = function
    | [] -> List.rev acc
    | ("" | ".") :: rest -> resolve acc rest
    | ".." :: rest -> (
        match acc with [] -> resolve [] rest | _ :: up -> resolve up rest)
    | comp :: rest -> resolve (comp :: acc) rest
  in
  resolve [] parts

let join_path comps = "/" ^ String.concat "/" comps

let normalize path = join_path (split_path path)

let dirname path =
  match List.rev (split_path path) with
  | [] -> "/"
  | _ :: rev_dir -> join_path (List.rev rev_dir)

let basename path =
  match List.rev (split_path path) with [] -> "/" | base :: _ -> base

(* ------------------------------------------------------------------ *)
(* Namespace: a root fs plus a mount table of union stacks             *)

type rnode = {
  mutable content : string;  (* regular files *)
  mutable children : (string * rnode) list option;  (* Some -> directory *)
  mutable mtime : int;
  mutable version : int;
}

type t = {
  mutable clock : int;
  mutable mounts : (string list * filesystem list ref) list;
      (* longest prefixes first; each point is a union stack *)
  mutable root : filesystem option;  (* set right after creation *)
  mutable ram : rnode option;
      (* the root RAM tree behind [root]; kept addressable so snapshot
         and restore can capture and rebuild it exactly (content,
         mtime, version, child order) without going through the
         filesystem record *)
  mutable mutations : int;
      (* bumped on every namespace mutation (writes, creates, removes,
         mounts) but not on reads or opens — unlike [clock], so it is a
         usable invalidation key for caches over namespace contents *)
}

(* Namespace operation counters, registered in the global observability
   ledger (lib/trace): every path resolution, open, read and write in
   the system passes through here.  Increments only — nothing on this
   path may allocate or slow down. *)
let m_walk = Trace.counter "vfs.walk"
let m_stat = Trace.counter "vfs.stat"
let m_open = Trace.counter "vfs.open"
let m_read = Trace.counter "vfs.read"
let m_write = Trace.counter "vfs.write"
let m_create = Trace.counter "vfs.create"
let m_remove = Trace.counter "vfs.remove"
let m_readdir = Trace.counter "vfs.readdir"

let now t = t.clock
let tick t = t.clock <- t.clock + 1
let generation t = t.mutations
let mutated t = t.mutations <- t.mutations + 1

(* ------------------------------------------------------------------ *)
(* RAM file system                                                     *)

let rnode_stat name node =
  {
    st_name = name;
    st_dir = node.children <> None;
    st_length =
      (match node.children with
      | None -> String.length node.content
      | Some kids -> List.length kids);
    st_mtime = node.mtime;
    st_version = node.version;
  }

let ramfs_over t root =
  let rec walk node = function
    | [] -> node
    | comp :: rest -> (
        match node.children with
        | None -> err Enotdir
        | Some kids -> (
            match List.assoc_opt comp kids with
            | None -> err Enonexist
            | Some child -> walk child rest))
  in
  let parent_of path =
    match List.rev path with
    | [] -> err Eperm
    | base :: rev_dir -> (walk root (List.rev rev_dir), base)
  in
  let fs_stat path =
    let node = walk root path in
    rnode_stat (match List.rev path with [] -> "/" | b :: _ -> b) node
  in
  let fs_open path mode ~trunc =
    let node = walk root path in
    if node.children <> None && (mode = Write || mode = Rdwr) then err Eisdir;
    if node.children <> None then
      (* Directory opened for read: reading it as a file is an error in
         this implementation; use readdir. *)
      err Eisdir;
    if trunc then begin
      node.content <- "";
      node.mtime <- t.clock;
      node.version <- node.version + 1
    end;
    {
      of_read =
        (fun ~off ~count ->
          let len = String.length node.content in
          if off >= len then ""
          else String.sub node.content off (min count (len - off)));
      of_write =
        (fun ~off data ->
          let len = String.length node.content in
          let newlen = max len (off + String.length data) in
          let b = Bytes.make newlen '\000' in
          Bytes.blit_string node.content 0 b 0 len;
          Bytes.blit_string data 0 b off (String.length data);
          node.content <- Bytes.to_string b;
          node.mtime <- t.clock;
          node.version <- node.version + 1;
          String.length data);
      of_close = (fun () -> ());
    }
  in
  let fs_create path ~dir =
    let parent, base = parent_of path in
    match parent.children with
    | None -> err Enotdir
    | Some kids ->
        if List.mem_assoc base kids then err Eexist;
        let node =
          {
            content = "";
            children = (if dir then Some [] else None);
            mtime = t.clock;
            version = 0;
          }
        in
        parent.children <- Some (kids @ [ (base, node) ]);
        parent.mtime <- t.clock;
        parent.version <- parent.version + 1
  in
  let fs_remove path =
    let parent, base = parent_of path in
    match parent.children with
    | None -> err Enotdir
    | Some kids ->
        (match List.assoc_opt base kids with
        | None -> err Enonexist
        | Some node ->
            if node.children <> None && node.children <> Some [] then
              err Eperm (* directory not empty *));
        parent.children <- Some (List.remove_assoc base kids);
        parent.mtime <- t.clock;
        parent.version <- parent.version + 1
  in
  let fs_readdir path =
    let node = walk root path in
    match node.children with
    | None -> err Enotdir
    | Some kids -> List.map (fun (name, n) -> rnode_stat name n) kids
  in
  { fs_stat; fs_open; fs_create; fs_remove; fs_readdir }

let ramfs t =
  ramfs_over t
    { content = ""; children = Some []; mtime = t.clock; version = 0 }

let create () =
  let t = { clock = 0; mounts = []; root = None; ram = None; mutations = 0 } in
  let node =
    { content = ""; children = Some []; mtime = t.clock; version = 0 }
  in
  let root = ramfs_over t node in
  t.root <- Some root;
  t.ram <- Some node;
  t.mounts <- [ ([], ref [ root ]) ];
  t

(* Longest matching mount prefix; returns the union stack and the path
   remainder. *)
let resolve t path =
  Trace.incr m_walk;
  let comps = split_path path in
  let rec strip prefix comps =
    match (prefix, comps) with
    | [], rest -> Some rest
    | p :: ps, c :: cs when p = c -> strip ps cs
    | _ -> None
  in
  let best =
    List.fold_left
      (fun acc (prefix, stack) ->
        match strip prefix comps with
        | Some rest -> (
            match acc with
            | Some (plen, _, _) when plen >= List.length prefix -> acc
            | _ -> Some (List.length prefix, stack, rest))
        | None -> acc)
      None t.mounts
  in
  match best with
  | Some (_, stack, rest) -> (!stack, rest)
  | None -> assert false (* root mount always matches *)

let mount t path fs =
  mutated t;
  let comps = split_path path in
  match List.assoc_opt comps t.mounts with
  | Some stack -> stack := [ fs ]
  | None -> t.mounts <- (comps, ref [ fs ]) :: t.mounts

(* View [fs] as rooted [prefix] below its own root, so a path inside an
   existing tree can participate in a union as a filesystem of its
   own. *)
let rebase fs prefix =
  {
    fs_stat = (fun rest -> fs.fs_stat (prefix @ rest));
    fs_open = (fun rest mode ~trunc -> fs.fs_open (prefix @ rest) mode ~trunc);
    fs_create = (fun rest ~dir -> fs.fs_create (prefix @ rest) ~dir);
    fs_remove = (fun rest -> fs.fs_remove (prefix @ rest));
    fs_readdir = (fun rest -> fs.fs_readdir (prefix @ rest));
  }

let bind_after t path fs =
  mutated t;
  let comps = split_path path in
  match List.assoc_opt comps t.mounts with
  | Some stack -> stack := !stack @ [ fs ]
  | None ->
      (* Union with whatever currently resolves there: rebase each
         member of the covering stack to this path, then append. *)
      let stack, rest = resolve t path in
      let existing = List.map (fun member -> rebase member rest) stack in
      t.mounts <- (comps, ref (existing @ [ fs ])) :: t.mounts

(* Try each fs in the union stack; first success wins, Enonexist falls
   through to the next member.  A member whose transport is broken (Eio,
   e.g. a mount whose client exhausted its retries) also falls through —
   a flaky mount degrades to whatever the rest of the union provides —
   but if nothing else answers, the transport error is reported in
   preference to a generic Enonexist. *)
let union_find stack f =
  let rec go first_eio = function
    | [] -> (match first_eio with Some e -> raise (Error e) | None -> err Enonexist)
    | fs :: rest -> (
        try f fs
        with
        | Error Enonexist when rest <> [] -> go first_eio rest
        | Error (Eio _ as e) when rest <> [] ->
            go (if first_eio = None then Some e else first_eio) rest)
  in
  go None stack

(* Is [comps] a strict prefix of some mount point?  Such paths exist as
   directories even when no file system provides them (mounting at
   /mnt/help makes /mnt a directory). *)
let mount_ancestor t comps =
  List.exists
    (fun (prefix, _) ->
      let rec is_prefix a b =
        match (a, b) with
        | [], _ :: _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _, [] -> false
      in
      is_prefix comps prefix)
    t.mounts

let stat t path =
  Trace.incr m_stat;
  let stack, rest = resolve t path in
  try union_find stack (fun fs -> fs.fs_stat rest)
  with Error Enonexist when mount_ancestor t (split_path path) ->
    {
      st_name = (match List.rev (split_path path) with b :: _ -> b | [] -> "/");
      st_dir = true;
      st_length = 0;
      st_mtime = 0;
      st_version = 0;
    }

let exists t path =
  match stat t path with _ -> true | exception Error _ -> false

let is_dir t path =
  match stat t path with
  | st -> st.st_dir
  | exception Error _ -> false

let open_raw t path mode ~trunc =
  Trace.incr m_open;
  let stack, rest = resolve t path in
  union_find stack (fun fs -> fs.fs_open rest mode ~trunc)

let read_file t path =
  Trace.incr m_read;
  let f = open_raw t path Read ~trunc:false in
  Fun.protect
    ~finally:(fun () -> try f.of_close () with _ -> ())
    (fun () ->
      let b = Buffer.create 256 in
      let rec loop off =
        let chunk = f.of_read ~off ~count:65536 in
        if chunk <> "" then begin
          Buffer.add_string b chunk;
          loop (off + String.length chunk)
        end
      in
      loop 0;
      Buffer.contents b)

let write_file t path data =
  Trace.incr m_write;
  tick t;
  mutated t;
  let stack, rest = resolve t path in
  let f =
    try union_find stack (fun fs -> fs.fs_open rest Write ~trunc:true)
    with Error Enonexist ->
      (* Create in the first member that accepts creation. *)
      let rec create_in = function
        | [] -> err Enonexist
        | fs :: more -> (
            try
              fs.fs_create rest ~dir:false;
              fs.fs_open rest Write ~trunc:true
            with Error (Eperm | Enonexist | Enotdir | Eio _) when more <> [] ->
              create_in more)
      in
      create_in stack
  in
  Fun.protect
    ~finally:(fun () -> try f.of_close () with _ -> ())
    (fun () -> ignore (f.of_write ~off:0 data))

let append_file t path data =
  Trace.incr m_write;
  tick t;
  mutated t;
  let stack, rest = resolve t path in
  let f, off =
    try
      let st = union_find stack (fun fs -> fs.fs_stat rest) in
      (union_find stack (fun fs -> fs.fs_open rest Write ~trunc:false),
       st.st_length)
    with Error Enonexist ->
      let rec create_in = function
        | [] -> err Enonexist
        | fs :: more -> (
            try
              fs.fs_create rest ~dir:false;
              fs.fs_open rest Write ~trunc:false
            with Error (Eperm | Enonexist | Enotdir | Eio _) when more <> [] ->
              create_in more)
      in
      (create_in stack, 0)
  in
  Fun.protect
    ~finally:(fun () -> try f.of_close () with _ -> ())
    (fun () -> ignore (f.of_write ~off data))

let mkdir t path =
  Trace.incr m_create;
  tick t;
  mutated t;
  let stack, rest = resolve t path in
  let rec create_in = function
    | [] -> err Eperm
    | fs :: more -> (
        try fs.fs_create rest ~dir:true
        with Error (Eperm | Enotdir) when more <> [] -> create_in more)
  in
  create_in stack

let mkdir_p t path =
  let comps = split_path path in
  let rec go prefix = function
    | [] -> ()
    | comp :: rest ->
        let here = prefix @ [ comp ] in
        let p = join_path here in
        if not (exists t p) then mkdir t p;
        go here rest
  in
  go [] comps

let remove t path =
  Trace.incr m_remove;
  tick t;
  mutated t;
  let stack, rest = resolve t path in
  union_find stack (fun fs -> fs.fs_remove rest)

let readdir t path =
  Trace.incr m_readdir;
  let stack, rest = resolve t path in
  (* Union view: entries of every member that has the directory, earlier
     members shadowing later ones by name. *)
  let seen = Hashtbl.create 16 in
  let entries = ref [] in
  let any = ref false in
  let first_eio = ref None in
  List.iter
    (fun fs ->
      match fs.fs_readdir rest with
      | stats ->
          any := true;
          List.iter
            (fun st ->
              if not (Hashtbl.mem seen st.st_name) then begin
                Hashtbl.add seen st.st_name ();
                entries := st :: !entries
              end)
            stats
      | exception Error (Eio _ as e) ->
          (* a broken member degrades to the others, but remember the
             transport error in case nothing answers *)
          if !first_eio = None then first_eio := Some e
      | exception Error _ -> ())
    stack;
  (* Mount points directly under this directory appear as entries too. *)
  let here = split_path path in
  List.iter
    (fun (prefix, _) ->
      match List.rev prefix with
      | base :: rev_parent when List.rev rev_parent = here ->
          if not (Hashtbl.mem seen base) then begin
            Hashtbl.add seen base ();
            any := true;
            entries :=
              {
                st_name = base;
                st_dir = true;
                st_length = 0;
                st_mtime = 0;
                st_version = 0;
              }
              :: !entries
          end
      | _ -> ())
    t.mounts;
  if not !any then
    (match !first_eio with Some e -> raise (Error e) | None -> err Enonexist);
  List.sort (fun a b -> compare a.st_name b.st_name) !entries

let subtree t prefix =
  let prefix = split_path prefix in
  let full rest = join_path (prefix @ rest) in
  (* A subtree's openfile and create paths are driven directly by
     consumers that bypass the namespace wrappers — most importantly the
     9P server, which calls [fs_open]/[fs_create]/[of_write] on the
     exported record.  Each mutation must still bump [t.mutations], or
     caches keyed on [generation] (the trigram index above all) keep
     serving state that a remote client has already changed. *)
  let bump () =
    tick t;
    mutated t
  in
  {
    fs_stat = (fun rest -> stat t (full rest));
    fs_open =
      (fun rest mode ~trunc ->
        if trunc then bump ();
        let f = open_raw t (full rest) mode ~trunc in
        {
          f with
          of_write =
            (fun ~off data ->
              bump ();
              f.of_write ~off data);
        });
    fs_create =
      (fun rest ~dir ->
        bump ();
        let stack, r = resolve t (full rest) in
        let rec create_in = function
          | [] -> err Eperm
          | fs :: more -> (
              try fs.fs_create r ~dir
              with Error (Eperm | Enotdir) when more <> [] -> create_in more)
        in
        create_in stack);
    fs_remove = (fun rest -> remove t (full rest));
    fs_readdir = (fun rest -> readdir t (full rest));
  }

(* ------------------------------------------------------------------ *)
(* Client-side handles                                                 *)

type handle = { file : openfile; mutable pos : int; ns : t }

let open_file t path mode =
  tick t;
  { file = open_raw t path mode ~trunc:false; pos = 0; ns = t }

let create_file t path =
  Trace.incr m_create;
  tick t;
  mutated t;
  if not (exists t path) then begin
    let stack, rest = resolve t path in
    let rec create_in = function
      | [] -> err Enonexist
      | fs :: more -> (
          try fs.fs_create rest ~dir:false
          with Error (Eperm | Enonexist | Enotdir) when more <> [] ->
            create_in more)
    in
    create_in stack
  end;
  { file = open_raw t path Rdwr ~trunc:true; pos = 0; ns = t }

let read h count =
  Trace.incr m_read;
  let data = h.file.of_read ~off:h.pos ~count in
  h.pos <- h.pos + String.length data;
  data

let write h data =
  Trace.incr m_write;
  tick h.ns;
  mutated h.ns;
  let n = h.file.of_write ~off:h.pos data in
  h.pos <- h.pos + n

let close h = h.file.of_close ()

let read_all h =
  let b = Buffer.create 256 in
  let rec loop () =
    let chunk = read h 65536 in
    if chunk <> "" then begin
      Buffer.add_string b chunk;
      loop ()
    end
  in
  loop ();
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)

(* Capture and rebuild the root RAM tree exactly — content, mtime,
   version, child order — plus the namespace clock and mutation
   counter.  File contents are not embedded: they are cut into
   fixed-size chunks handed to [put], which stores each chunk under a
   content digest and returns the key; the snapshot records only the
   keys.  Unchanged chunks therefore cost nothing across consecutive
   snapshots (the WAL's content-addressed store deduplicates them).
   The mount table is NOT captured: recovery re-runs [Session.boot],
   which recreates every mount, then restores the RAM tree over it. *)

let chunk_size = 8192

let w_content b ~put s =
  Codec.w_int b (String.length s);
  let n = (String.length s + chunk_size - 1) / chunk_size in
  Codec.w_int b n;
  for i = 0 to n - 1 do
    let off = i * chunk_size in
    let len = min chunk_size (String.length s - off) in
    Codec.w_str b (put (String.sub s off len))
  done

let r_content d ~get =
  let total = Codec.r_int d in
  let n = Codec.r_int d in
  let b = Buffer.create total in
  for _ = 1 to n do
    Buffer.add_string b (get (Codec.r_str d))
  done;
  let s = Buffer.contents b in
  if String.length s <> total then
    err (Eio "snapshot chunk length mismatch");
  s

let rec w_rnode b ~put node =
  Codec.w_int b node.mtime;
  Codec.w_int b node.version;
  match node.children with
  | None ->
      Codec.w_int b 0;
      w_content b ~put node.content
  | Some kids ->
      Codec.w_int b 1;
      Codec.w_list b
        (fun b (name, child) ->
          Codec.w_str b name;
          w_rnode b ~put child)
        kids

let rec r_rnode d ~get =
  let mtime = Codec.r_int d in
  let version = Codec.r_int d in
  match Codec.r_int d with
  | 0 ->
      let content = r_content d ~get in
      { content; children = None; mtime; version }
  | _ ->
      let kids =
        Codec.r_list d (fun d ->
            let name = Codec.r_str d in
            (name, r_rnode d ~get))
      in
      { content = ""; children = Some kids; mtime; version }

let snapshot t ~put =
  match t.ram with
  | None -> invalid_arg "Vfs.snapshot: no RAM root"
  | Some root ->
      let b = Buffer.create 4096 in
      Codec.w_int b t.clock;
      Codec.w_int b t.mutations;
      w_rnode b ~put root;
      Buffer.contents b

let restore t ~get s =
  match t.ram with
  | None -> invalid_arg "Vfs.restore: no RAM root"
  | Some root ->
      let d = Codec.reader s in
      let clock = Codec.r_int d in
      let mutations = Codec.r_int d in
      let fresh = r_rnode d ~get in
      root.content <- fresh.content;
      root.children <- fresh.children;
      root.mtime <- fresh.mtime;
      root.version <- fresh.version;
      t.clock <- clock;
      t.mutations <- mutations
