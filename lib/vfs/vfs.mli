(** An in-memory, Plan 9-flavoured file system with a mount table.

    This is the substrate standing in for the Plan 9 kernel namespace the
    paper runs on.  Everything [help] and its tools do with files —
    [open/read/write/create/remove/ls] plus [bind]-style mounts and union
    directories — goes through this module.  File servers (notably the
    [/mnt/help] server of the paper) implement the {!filesystem} record
    and are mounted like any other tree.

    Paths are absolute, [/]-separated; [.] and [..] are resolved
    lexically, as on Plan 9.  Time is a logical clock ({!tick}). *)

type error =
  | Enonexist  (** file does not exist *)
  | Enotdir  (** not a directory *)
  | Eisdir  (** is a directory *)
  | Eexist  (** already exists *)
  | Eperm  (** operation not permitted *)
  | Ebadname  (** bad path element *)
  | Eio of string  (** server-specific failure *)

exception Error of error

val error_message : error -> string

type mode = Read | Write | Rdwr

type stat = {
  st_name : string;
  st_dir : bool;
  st_length : int;
  st_mtime : int;
  st_version : int;  (** bumped on each modification *)
}

(** An open file: a server-side handle.  Offsets are explicit, as in 9P;
    sequential position bookkeeping belongs to the client ({!handle}). *)
type openfile = {
  of_read : off:int -> count:int -> string;
  of_write : off:int -> string -> int;
  of_close : unit -> unit;
}

(** The interface a file server implements.  All paths are component
    lists relative to the server's root; [[]] is the root itself. *)
type filesystem = {
  fs_stat : string list -> stat;
  fs_open : string list -> mode -> trunc:bool -> openfile;
  fs_create : string list -> dir:bool -> unit;
  fs_remove : string list -> unit;
  fs_readdir : string list -> stat list;
}

type t

(** A fresh namespace whose root is an empty RAM file system. *)
val create : unit -> t

(** Logical time. *)
val now : t -> int

val tick : t -> unit

(** Monotonic mutation counter: bumped by writes, creates, removes and
    mounts, but not by reads or opens (unlike the {!now} clock).  An
    unchanged generation means namespace contents are unchanged, so
    caches over them (e.g. command resolution) are still valid. *)
val generation : t -> int

(** {1 Mount table} *)

(** [mount t path fs] attaches [fs] at [path], replacing anything bound
    there before (but the underlying tree is untouched). *)
val mount : t -> string -> filesystem -> unit

(** [bind_after t path fs] unions [fs] after the existing trees at
    [path], as Plan 9's [bind -a]: lookups try earlier trees first,
    directory reads union all.  A member that fails with [Eio] (a
    broken transport) is skipped like [Enonexist] — the union degrades
    to its healthy members — but if no member answers, the first
    transport error is re-raised rather than a generic [Enonexist]. *)
val bind_after : t -> string -> filesystem -> unit

(** A RAM file system rooted at a fresh tree, usable with {!mount}. *)
val ramfs : t -> filesystem

(** [subtree t path] views the namespace below [path] as a filesystem,
    so an existing directory can be bound elsewhere (Plan 9's
    [bind /a /b]). *)
val subtree : t -> string -> filesystem

(** {1 Path utilities} *)

(** Lexical normalization: absolute, no [.], [..], empty components. *)
val normalize : string -> string

val split_path : string -> string list
val join_path : string list -> string

(** Directory part and base name ("/a/b/c" -> "/a/b", "c"). *)
val dirname : string -> string

val basename : string -> string

(** {1 Whole-file convenience} *)

val stat : t -> string -> stat
val exists : t -> string -> bool
val is_dir : t -> string -> bool
val read_file : t -> string -> string
val write_file : t -> string -> string -> unit

(** Create the file if needed and append. *)
val append_file : t -> string -> string -> unit

val mkdir : t -> string -> unit

(** [mkdir_p] creates all missing ancestors. *)
val mkdir_p : t -> string -> unit

val remove : t -> string -> unit
val readdir : t -> string -> stat list

(** {1 Open-file handles (sequential position kept client-side)} *)

type handle

val open_file : t -> string -> mode -> handle

(** Open, creating (and truncating) a regular file. *)
val create_file : t -> string -> handle

val read : handle -> int -> string
val write : handle -> string -> unit
val close : handle -> unit

(** Read everything from the current position. *)
val read_all : handle -> string

(** {1 Snapshot / restore}

    Durability support: capture and rebuild the root RAM tree exactly
    (content, mtime, version, child order) plus the namespace clock and
    mutation counter.  File contents are cut into fixed-size chunks and
    handed to [put], which stores each chunk under a content digest and
    returns the key; the snapshot holds only keys, so chunks unchanged
    since the previous snapshot cost nothing.  The mount table is not
    captured — recovery re-runs the boot sequence, which recreates
    every mount, then restores the RAM tree over it. *)

(** [snapshot t ~put] serializes the RAM tree; [put chunk] must return
    a stable key for [chunk] (typically its digest). *)
val snapshot : t -> put:(string -> string) -> string

(** [restore t ~get s] rebuilds the RAM tree from [snapshot] output;
    [get key] must return the chunk stored under [key].  Bypasses the
    operation counters and does not tick the clock — the clock and
    generation are restored to their captured values. *)
val restore : t -> get:(string -> string) -> string -> unit
