(* Write-ahead log, content-addressed snapshots, crash recovery.  See
   wal.mli for the model; DESIGN.md "Durability" for the invariants. *)

exception Corrupt of string

type op =
  | O_event of Help.event
  | O_point of int * string * int
  | O_sweep of int * string
  | O_exec_word of int * string
  | O_exec_sweep of int * string
  | O_exec_tag of int * string
  | O_chord_cut of int * string
  | O_drag of int * int * int
  | O_click_tab of int
  | O_ctl of int * string
  | O_reveal of int
  | O_draw
  | O_write of string * string
  | O_append of string * string
  | O_remove of string
  | O_mkdir of string

let m_records = Trace.counter "wal.records"
let m_bytes = Trace.counter "wal.bytes"
let m_snapshots = Trace.counter "wal.snapshots"
let m_chunks_new = Trace.counter "wal.chunks.new"
let m_chunks_shared = Trace.counter "wal.chunks.shared"
let m_journal = Trace.counter "wal.journal.entries"
let h_recover = Trace.histogram "wal.recover.us"

(* ---- op serialization ------------------------------------------- *)

let w_button b n =
  Codec.w_int b (match n with Help.Left -> 0 | Help.Middle -> 1 | Help.Right -> 2)

let r_button d =
  match Codec.r_int d with
  | 0 -> Help.Left
  | 1 -> Help.Middle
  | 2 -> Help.Right
  | n -> raise (Corrupt (Printf.sprintf "bad button tag %d" n))

let w_op b op =
  let wn = Codec.w_int b and ws = Codec.w_str b in
  match op with
  | O_event ev -> (
      wn 0;
      match ev with
      | Help.Move (x, y) -> wn 0; wn x; wn y
      | Help.Press bt -> wn 1; w_button b bt
      | Help.Release bt -> wn 2; w_button b bt
      | Help.Key c -> wn 3; wn (Char.code c)
      | Help.Type s -> wn 4; ws s)
  | O_point (w, needle, off) -> wn 1; wn w; ws needle; wn off
  | O_sweep (w, needle) -> wn 2; wn w; ws needle
  | O_exec_word (w, needle) -> wn 3; wn w; ws needle
  | O_exec_sweep (w, needle) -> wn 4; wn w; ws needle
  | O_exec_tag (w, needle) -> wn 5; wn w; ws needle
  | O_chord_cut (w, needle) -> wn 6; wn w; ws needle
  | O_drag (w, col, y) -> wn 7; wn w; wn col; wn y
  | O_click_tab w -> wn 8; wn w
  | O_ctl (w, cmd) -> wn 9; wn w; ws cmd
  | O_reveal w -> wn 10; wn w
  | O_draw -> wn 11
  | O_write (p, s) -> wn 12; ws p; ws s
  | O_append (p, s) -> wn 13; ws p; ws s
  | O_remove p -> wn 14; ws p
  | O_mkdir p -> wn 15; ws p

let r_op d =
  let rn () = Codec.r_int d and rs () = Codec.r_str d in
  match rn () with
  | 0 ->
      O_event
        (match rn () with
        | 0 ->
            let x = rn () in
            Help.Move (x, rn ())
        | 1 -> Help.Press (r_button d)
        | 2 -> Help.Release (r_button d)
        | 3 -> Help.Key (Char.chr (rn () land 0xff))
        | 4 -> Help.Type (rs ())
        | n -> raise (Corrupt (Printf.sprintf "bad event tag %d" n)))
  | 1 ->
      let w = rn () in
      let needle = rs () in
      O_point (w, needle, rn ())
  | 2 ->
      let w = rn () in
      O_sweep (w, rs ())
  | 3 ->
      let w = rn () in
      O_exec_word (w, rs ())
  | 4 ->
      let w = rn () in
      O_exec_sweep (w, rs ())
  | 5 ->
      let w = rn () in
      O_exec_tag (w, rs ())
  | 6 ->
      let w = rn () in
      O_chord_cut (w, rs ())
  | 7 ->
      let w = rn () in
      let col = rn () in
      O_drag (w, col, rn ())
  | 8 -> O_click_tab (rn ())
  | 9 ->
      let w = rn () in
      O_ctl (w, rs ())
  | 10 -> O_reveal (rn ())
  | 11 -> O_draw
  | 12 ->
      let p = rs () in
      O_write (p, rs ())
  | 13 ->
      let p = rs () in
      O_append (p, rs ())
  | 14 -> O_remove (rs ())
  | 15 -> O_mkdir (rs ())
  | n -> raise (Corrupt (Printf.sprintf "bad op tag %d" n))

(* ---- store ------------------------------------------------------ *)

type snapshot = {
  sn_clock : int;
  sn_log_pos : int;
  sn_ops : int;
  sn_vfs : string;
  sn_rc : string;
  sn_help : string;
  sn_trace : string;
  sn_total_bytes : int;
  sn_new_bytes : int;
  sn_chunks : string list;  (* every chunk key this snapshot references *)
}

type store = {
  log : Buffer.t;
  chunks : (string, string) Hashtbl.t;
  mutable c_bytes : int;
  mutable snaps : snapshot list;  (* newest first *)
  mutable jentries : (int * int * int * string) list;  (* newest first *)
  mutable jseq : int;
}

let create_store () =
  {
    log = Buffer.create 4096;
    chunks = Hashtbl.create 64;
    c_bytes = 0;
    snaps = [];
    jentries = [];
    jseq = 0;
  }

let log_pos s = Buffer.length s.log
let chunk_count s = Hashtbl.length s.chunks
let chunk_bytes s = s.c_bytes

let chunk_get s key =
  match Hashtbl.find_opt s.chunks key with
  | Some c -> c
  | None -> raise (Corrupt "unknown chunk digest")

let truncate_log s n =
  let n = max 0 (min n (Buffer.length s.log)) in
  let log = Buffer.create (n + 16) in
  Buffer.add_string log (Buffer.sub s.log 0 n);
  let snaps = List.filter (fun sn -> sn.sn_log_pos <= n) s.snaps in
  (* Chunks written by snapshots past the cut would not exist after a
     real crash; keeping them would also skew the recovered run's
     new/shared accounting away from the uninterrupted run's.  Rebuild
     the table from the surviving snapshots' reference lists. *)
  let chunks = Hashtbl.create 64 in
  let c_bytes = ref 0 in
  List.iter
    (fun sn ->
      List.iter
        (fun key ->
          if not (Hashtbl.mem chunks key) then begin
            let c = Hashtbl.find s.chunks key in
            Hashtbl.add chunks key c;
            c_bytes := !c_bytes + String.length c
          end)
        sn.sn_chunks)
    snaps;
  (* The journal sidecar is kept whole: it is a separate device and may
     legitimately hold entries newer than the last surviving record. *)
  {
    log;
    chunks;
    c_bytes = !c_bytes;
    snaps;
    jentries = s.jentries;
    jseq = s.jseq;
  }

let snapshots s = s.snaps
let latest_snapshot s = match s.snaps with [] -> None | sn :: _ -> Some sn
let sn_clock sn = sn.sn_clock
let sn_log_pos sn = sn.sn_log_pos
let sn_ops sn = sn.sn_ops
let sn_vfs sn = sn.sn_vfs
let sn_rc sn = sn.sn_rc
let sn_help sn = sn.sn_help
let sn_trace sn = sn.sn_trace
let sn_total_bytes sn = sn.sn_total_bytes
let sn_new_bytes sn = sn.sn_new_bytes

(* ---- attachment ------------------------------------------------- *)

type t = {
  st : store;
  mutable recording : bool;
  mutable ops : int;
  mutable every : int;
  mutable since_snap : int;
  mutable on_checkpoint : unit -> unit;
  mutable snap_total : int;  (* per-snapshot tallies, between begin/commit *)
  mutable snap_new : int;
  mutable snap_keys : string list;
  mutable last_ops : int;
  mutable last_torn : int;
  mutable last_us : int;
}

let attach ?(checkpoint_every = 0) ~recording st =
  {
    st;
    recording;
    ops = 0;
    every = checkpoint_every;
    since_snap = 0;
    on_checkpoint = (fun () -> ());
    snap_total = 0;
    snap_new = 0;
    snap_keys = [];
    last_ops = 0;
    last_torn = 0;
    last_us = 0;
  }

let store t = t.st
let recording t = t.recording
let set_recording t v = t.recording <- v
let op_count t = t.ops
let set_on_checkpoint t f = t.on_checkpoint <- f

(* A frame is [w_str payload; w_str digest]: self-delimiting, so a
   clean end-of-log is distinguishable from a frame cut mid-write. *)
let frame op =
  let b = Buffer.create 32 in
  Codec.w_int b (Trace.logical_now ());
  w_op b op;
  let payload = Buffer.contents b in
  let f = Buffer.create (Buffer.length b + 24) in
  Codec.w_str f payload;
  Codec.w_str f (Digest.string payload);
  Buffer.contents f

let log t op =
  let fr = frame op in
  Trace.incr m_records;
  Trace.incr ~by:(String.length fr) m_bytes;
  t.ops <- t.ops + 1;
  t.since_snap <- t.since_snap + 1;
  if t.recording then Buffer.add_string t.st.log fr

let maybe_checkpoint t =
  if t.recording && t.every > 0 && t.since_snap >= t.every then
    t.on_checkpoint ()

let force_checkpoint t = if t.recording then t.on_checkpoint ()

let begin_snapshot t =
  t.snap_total <- 0;
  t.snap_new <- 0;
  t.snap_keys <- []

let put t chunk =
  let key = Digest.string chunk in
  let len = String.length chunk in
  t.snap_total <- t.snap_total + len;
  t.snap_keys <- key :: t.snap_keys;
  if Hashtbl.mem t.st.chunks key then Trace.incr m_chunks_shared
  else begin
    Hashtbl.add t.st.chunks key chunk;
    t.st.c_bytes <- t.st.c_bytes + len;
    t.snap_new <- t.snap_new + len;
    Trace.incr m_chunks_new
  end;
  key

let commit_snapshot t ~vfs ~rc ~help =
  (* Count the snapshot before capturing the registry, so the captured
     wal.snapshots already includes this one: a recovered session's
     counters then equal the reference run's post-checkpoint values. *)
  Trace.incr m_snapshots;
  let trace = Trace.save_state () in
  let comp = String.length vfs + String.length rc + String.length help in
  let sn =
    {
      sn_clock = Trace.logical_now ();
      sn_log_pos = Buffer.length t.st.log;
      sn_ops = t.ops;
      sn_vfs = vfs;
      sn_rc = rc;
      sn_help = help;
      sn_trace = trace;
      sn_total_bytes = t.snap_total + comp;
      sn_new_bytes = t.snap_new + comp;
      sn_chunks = t.snap_keys;
    }
  in
  t.st.snaps <- sn :: t.st.snaps;
  t.since_snap <- 0

(* ---- replay ----------------------------------------------------- *)

let ops_after s ~pos =
  let src = Buffer.contents s.log in
  let len = String.length src in
  let pos = max 0 (min pos len) in
  let d = Codec.reader (String.sub src pos (len - pos)) in
  let acc = ref [] in
  let torn = ref 0 in
  (try
     while not (Codec.at_end d) do
       match
         (try
            let payload = Codec.r_str d in
            let sum = Codec.r_str d in
            Some (payload, sum)
          with Codec.Truncated _ -> None)
       with
       | None ->
           (* Frame cut mid-write: tolerable only as the very tail. *)
           torn := 1;
           raise Exit
       | Some (payload, sum) ->
           if Digest.string payload <> sum then
             if Codec.at_end d then begin
               (* Trailing garbage that happens to parse as a frame but
                  fails its checksum: still a torn tail. *)
               torn := 1;
               raise Exit
             end
             else raise (Corrupt "wal record checksum mismatch");
           let pd = Codec.reader payload in
           let stamp = Codec.r_int pd in
           let op =
             try r_op pd
             with Codec.Truncated m -> raise (Corrupt ("bad wal record: " ^ m))
           in
           acc := (stamp, op) :: !acc
     done
   with Exit -> ());
  (List.rev !acc, !torn)

let prime t sn =
  t.ops <- sn.sn_ops;
  t.since_snap <- 0

let note_recovery t ~ops ~torn =
  t.last_ops <- ops;
  t.last_torn <- torn

let set_recovery_us t us =
  t.last_us <- us;
  Trace.observe h_recover us

(* ---- journal sidecar -------------------------------------------- *)

let journal_entry t (clock, conn, kind) =
  Trace.incr m_journal;
  if t.recording then begin
    t.st.jseq <- t.st.jseq + 1;
    t.st.jentries <- (t.st.jseq, clock, conn, kind) :: t.st.jentries
  end

let journal_length s = List.length s.jentries

let verify_journal s =
  let rec check expect prev_clock = function
    | [] ->
        if expect <> 0 then
          raise
            (Corrupt
               (Printf.sprintf "journal gap: entries below seq %d missing"
                  (expect + 1)))
    | (seq, clock, _, _) :: rest ->
        if seq <> expect then
          raise
            (Corrupt
               (Printf.sprintf "journal gap: expected seq %d, found %d" expect
                  seq));
        (match prev_clock with
        | Some p when clock > p ->
            raise
              (Corrupt
                 (Printf.sprintf "journal clock inversion at seq %d" seq))
        | _ -> ());
        check (expect - 1) (Some clock) rest
  in
  (* Newest first: sequences must run jseq, jseq-1, ..., 1 with
     non-increasing clocks. *)
  check s.jseq None s.jentries

let drop_journal_entry s ~seq =
  s.jentries <- List.filter (fun (q, _, _, _) -> q <> seq) s.jentries

(* ---- introspection ---------------------------------------------- *)

let stats_text t =
  let b = Buffer.create 256 in
  let line k v = Buffer.add_string b (Printf.sprintf "%-28s %d\n" k v) in
  line "wal.log.bytes" (Buffer.length t.st.log);
  line "wal.ops" t.ops;
  line "wal.snapshots" (List.length t.st.snaps);
  line "wal.chunks" (Hashtbl.length t.st.chunks);
  line "wal.chunk.bytes" t.st.c_bytes;
  line "wal.journal.seq" t.st.jseq;
  line "wal.recording" (if t.recording then 1 else 0);
  line "wal.checkpoint.every" t.every;
  line "wal.ops.since.snapshot" t.since_snap;
  (match t.st.snaps with
  | [] -> ()
  | sn :: _ ->
      line "wal.snapshot.last.clock" sn.sn_clock;
      line "wal.snapshot.last.ops" sn.sn_ops;
      line "wal.snapshot.last.bytes.total" sn.sn_total_bytes;
      line "wal.snapshot.last.bytes.new" sn.sn_new_bytes);
  line "wal.recover.last.ops" t.last_ops;
  line "wal.recover.last.torn" t.last_torn;
  line "wal.recover.last.us" t.last_us;
  Buffer.contents b
