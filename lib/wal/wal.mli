(** Write-ahead log, content-addressed snapshots, and crash recovery.

    Durability for a [help] session is op-sourced: every state-mutating
    operation that enters the session from outside — an input event, a
    window control command, a reveal, a draw, a namespace write — is
    recorded as one checksummed {!op} record stamped with the logical
    clock, and the whole session is a pure function of the boot
    parameters plus the op sequence.  Recovery therefore never diffs
    state: it re-runs boot, restores the latest snapshot, and replays
    the log tail, asserting at every record that the clock agrees with
    the stamp laid down by the original run.

    A {!store} is the durable half: the append-only log, the
    content-addressed chunk store shared by all snapshots, the snapshot
    records, and the journal sidecar fed by the scheduler's dispatch
    sink (see [Sched.set_journal_sink]).  A {!t} is one session's
    attachment to a store: it carries the recording mode, the
    checkpoint policy, and per-attachment recovery statistics.

    Modes.  With [recording] on, {!log} appends to the store.  With it
    off — replay mode — {!log} performs the exact same counter
    accounting ([wal.records], [wal.bytes]) but appends nothing, so a
    recovered session's metrics converge byte-for-byte with the
    uninterrupted run's.

    Torn tails.  The log is a sequence of length-prefixed,
    digest-checksummed frames.  A truncated final frame (the crash
    landed mid-write) is tolerated and counted; a checksum mismatch
    anywhere else raises {!Corrupt}.  Likewise {!verify_journal} fails
    loudly — a gap in the journal sequence means an entry was lost
    before the sink persisted it, and recovery must not paper over it.

    Counters: [wal.records], [wal.bytes], [wal.snapshots],
    [wal.chunks.new], [wal.chunks.shared], [wal.journal.entries];
    histogram [wal.recover.us]. *)

exception Corrupt of string

(** One logged state-mutating operation.  The vocabulary is the
    session's public driving API, not its internal effects: replay
    re-invokes the same entry point, so every derived mutation — and
    every counter the entry point touches on the way, including
    read-side ones like layout-cache hits — is reproduced by the same
    code that produced it.  [O_event] covers raw events delivered
    outside a session helper (tapped by [Help.on_event]); the gesture
    ops name their window by id and their target by needle text; the
    namespace ops cover direct driver writes outside the UI. *)
type op =
  | O_event of Help.event
  | O_point of int * string * int  (** window id, needle, offset *)
  | O_sweep of int * string
  | O_exec_word of int * string
  | O_exec_sweep of int * string
  | O_exec_tag of int * string
  | O_chord_cut of int * string
  | O_drag of int * int * int  (** window id, column index, row *)
  | O_click_tab of int
  | O_ctl of int * string  (** window id, ctl command *)
  | O_reveal of int  (** window id *)
  | O_draw
  | O_write of string * string  (** path, contents *)
  | O_append of string * string
  | O_remove of string
  | O_mkdir of string

(** {1 Store} *)

type store

val create_store : unit -> store

val log_pos : store -> int
(** Current byte length of the op log. *)

val chunk_count : store -> int

val chunk_bytes : store -> int

val chunk_get : store -> string -> string
(** Fetch a chunk by digest key.  @raise Corrupt on an unknown key. *)

val truncate_log : store -> int -> store
(** [truncate_log s n] is a copy of [s] whose op log is cut to the
    first [n] bytes and whose snapshot list keeps only snapshots taken
    at or before that position — the store as a crash at byte [n]
    would have left it.  The chunk table is rebuilt from the surviving
    snapshots' reference lists (chunks written after the cut would not
    exist); the journal sidecar is kept whole, as a separate device
    that may outlive the log tail. *)

(** {1 Snapshots} *)

type snapshot

val snapshots : store -> snapshot list
(** Newest first. *)

val latest_snapshot : store -> snapshot option

val sn_clock : snapshot -> int
val sn_log_pos : snapshot -> int
val sn_ops : snapshot -> int
val sn_vfs : snapshot -> string
val sn_rc : snapshot -> string
val sn_help : snapshot -> string
val sn_trace : snapshot -> string

val sn_total_bytes : snapshot -> int
(** Component bytes plus every referenced chunk's length — the full
    logical size of the snapshot. *)

val sn_new_bytes : snapshot -> int
(** Component bytes plus only the chunks first stored by this
    snapshot — its incremental cost.  Content addressing makes this
    shrink toward the edit size when little changed. *)

(** {1 Attachment} *)

type t

val attach : ?checkpoint_every:int -> recording:bool -> store -> t
(** [checkpoint_every n] arms {!maybe_checkpoint} to fire after [n]
    ops have accumulated since the last snapshot (0, the default,
    disarms automatic checkpoints). *)

val store : t -> store
val recording : t -> bool
val set_recording : t -> bool -> unit
val op_count : t -> int

val log : t -> op -> unit
(** Record one op, stamped with [Trace.logical_now ()].  Appends to
    the store when recording; in replay mode only the counters and op
    count advance. *)

val set_on_checkpoint : t -> (unit -> unit) -> unit

val maybe_checkpoint : t -> unit
(** Fire the checkpoint callback if recording, armed, and at least
    [checkpoint_every] ops have accumulated since the last snapshot.
    The session layer calls this after a draw completes, so snapshots
    always capture post-draw state. *)

val force_checkpoint : t -> unit
(** Fire the checkpoint callback now (if recording), regardless of the
    threshold — the in-band [/mnt/help/wal/checkpoint] trigger.  Taken
    between ops it is consistent; callers that want recovery to
    converge byte-for-byte should trigger it right after a draw, like
    the automatic policy does. *)

val begin_snapshot : t -> unit
(** Reset the per-snapshot byte tallies; component builders call
    {!put} between this and {!commit_snapshot}. *)

val put : t -> string -> string
(** Store a chunk under its content digest, counting it as new or
    shared, and return the key. *)

val commit_snapshot : t -> vfs:string -> rc:string -> help:string -> unit
(** Seal the snapshot: count it, capture the metrics registry
    ([Trace.save_state] — after the [wal.snapshots] bump, so restored
    counters match the reference run's post-checkpoint values), and
    record it at the current log position. *)

(** {1 Replay} *)

val ops_after : store -> pos:int -> (int * op) list * int
(** Decode the log from byte [pos]: the [(stamp, op)] records in
    order, and the number of torn (truncated) trailing frames — 0 or
    1.  @raise Corrupt on a checksum mismatch before the tail. *)

val prime : t -> snapshot -> unit
(** Seed the attachment's op counter from the snapshot before tail
    replay, so replaying [n] tail records through {!log} leaves
    {!op_count} at the reference run's value ([sn_ops] + [n]). *)

val note_recovery : t -> ops:int -> torn:int -> unit
(** Record per-attachment recovery statistics ([ops] replayed, [torn]
    truncated tail frames) for {!stats_text}. *)

val set_recovery_us : t -> int -> unit
(** Record the measured recovery latency and observe it on the
    [wal.recover.us] histogram.  Benchmarks call this only after
    capturing any state they compare byte-for-byte, since the
    histogram observation is recovery-only and has no counterpart in
    an uninterrupted run. *)

(** {1 Journal sidecar} *)

val journal_entry : t -> int * int * string -> unit
(** Sink target for [Sched.set_journal_sink]: persist one
    [(clock, conn, kind)] dispatch record under the next sequence
    number.  In replay mode only the [wal.journal.entries] counter
    advances. *)

val journal_length : store -> int

val verify_journal : store -> unit
(** Check sequence contiguity and clock monotonicity.
    @raise Corrupt on a gap — an entry was dropped before the sink
    persisted it — or a clock inversion. *)

val drop_journal_entry : store -> seq:int -> unit
(** Delete the entry with sequence number [seq] — a test hook
    simulating an entry lost to the bounded ring. *)

(** {1 Introspection} *)

val stats_text : t -> string
(** The [/mnt/help/wal/stats] payload: store totals, snapshot and
    chunk accounting, recording mode, and last-recovery statistics. *)
