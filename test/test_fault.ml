(* The 9P robustness layer: codec fuzzing, fid-leak invariants,
   deterministic fault injection, retry/timeout behaviour, and graceful
   degradation of unions, mounts and help built-ins. *)

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Codec fuzzing: arbitrary bytes never raise anything but Bad_message *)

let decodes_safely decode s =
  match decode s with
  | _ -> true
  | exception Nine.Bad_message _ -> true
  | exception _ -> false

let arbitrary_bytes =
  QCheck.make ~print:String.escaped
    QCheck.Gen.(string_size (0 -- 64) ?gen:(Some (map Char.chr (0 -- 255))))

let fuzz_arbitrary =
  QCheck.Test.make ~name:"decoders reject arbitrary bytes with Bad_message"
    ~count:2000 arbitrary_bytes (fun s ->
      decodes_safely Nine.decode_t s
      && decodes_safely Nine.decode_r s
      && decodes_safely Nine.decode_stats s)

(* generators for well-formed messages *)

let gen_qid =
  QCheck.Gen.(
    map3
      (fun t v p -> { Nine.q_type = t; q_version = v; q_path = p })
      (0 -- 255) (0 -- 10_000) (0 -- 100_000))

let gen_name = QCheck.Gen.(string_size (0 -- 12) ?gen:(Some printable))

let gen_mode =
  QCheck.Gen.(
    oneof
      [
        return Nine.Oread; return Nine.Owrite; return Nine.Ordwr;
        return (Nine.Otrunc Nine.Owrite);
      ])

let gen_tmsg =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun msize version -> Nine.Tversion { msize; version })
          (0 -- 100_000) gen_name;
        map3
          (fun fid uname aname -> Nine.Tattach { fid; uname; aname })
          (0 -- 1000) gen_name gen_name;
        map3
          (fun fid newfid names -> Nine.Twalk { fid; newfid; names })
          (0 -- 1000) (0 -- 1000)
          (list_size (0 -- 5) gen_name);
        map2 (fun fid mode -> Nine.Topen { fid; mode }) (0 -- 1000) gen_mode;
        map3
          (fun fid name dir -> Nine.Tcreate { fid; name; dir; mode = Nine.Oread })
          (0 -- 1000) gen_name bool;
        map3
          (fun fid offset count -> Nine.Tread { fid; offset; count })
          (0 -- 1000) (0 -- 1_000_000) (0 -- 65536);
        map3
          (fun fid offset data -> Nine.Twrite { fid; offset; data })
          (0 -- 1000) (0 -- 1_000_000)
          (string_size (0 -- 64));
        map (fun fid -> Nine.Tclunk { fid }) (0 -- 1000);
        map (fun fid -> Nine.Tremove { fid }) (0 -- 1000);
        map (fun fid -> Nine.Tstat { fid }) (0 -- 1000);
        map (fun oldtag -> Nine.Tflush { oldtag }) (0 -- 0xffff);
      ])

let gen_stat9 =
  QCheck.Gen.(
    map3
      (fun name qid (length, mtime) ->
        { Nine.s9_name = name; s9_qid = qid; s9_length = length;
          s9_mtime = mtime })
      gen_name gen_qid
      (pair (0 -- 1_000_000) (0 -- 1_000_000)))

let gen_rmsg =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun msize version -> Nine.Rversion { msize; version })
          (0 -- 100_000) gen_name;
        map (fun qid -> Nine.Rattach { qid }) gen_qid;
        map (fun qids -> Nine.Rwalk { qids }) (list_size (0 -- 5) gen_qid);
        map2 (fun qid iounit -> Nine.Ropen { qid; iounit }) gen_qid (0 -- 65536);
        map2
          (fun qid iounit -> Nine.Rcreate { qid; iounit })
          gen_qid (0 -- 65536);
        map (fun data -> Nine.Rread { data }) (string_size (0 -- 64));
        map (fun count -> Nine.Rwrite { count }) (0 -- 65536);
        return Nine.Rclunk;
        return Nine.Rremove;
        return Nine.Rflush;
        map (fun stat -> Nine.Rstat { stat }) gen_stat9;
        map (fun ename -> Nine.Rerror { ename }) gen_name;
      ])

let fuzz_roundtrip_t =
  QCheck.Test.make ~name:"encode_t / decode_t round-trip" ~count:500
    (QCheck.make QCheck.Gen.(pair (0 -- 0xfffe) gen_tmsg))
    (fun (tag, msg) -> Nine.decode_t (Nine.encode_t ~tag msg) = (tag, msg))

let fuzz_roundtrip_r =
  QCheck.Test.make ~name:"encode_r / decode_r round-trip" ~count:500
    (QCheck.make QCheck.Gen.(pair (0 -- 0xfffe) gen_rmsg))
    (fun (tag, msg) -> Nine.decode_r (Nine.encode_r ~tag msg) = (tag, msg))

(* mutilations of valid frames: truncate anywhere, or flip any byte *)
let fuzz_mutilated =
  QCheck.Test.make
    ~name:"truncated / corrupted valid frames never escape Bad_message"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(
         tup4 gen_tmsg gen_rmsg (pair (0 -- 1_000_000) (0 -- 255))
           (0 -- 1_000_000)))
    (fun (t, r, (pos, bit), cut) ->
      let mutilate s =
        let flipped =
          if s = "" then s
          else begin
            let b = Bytes.of_string s in
            let i = pos mod Bytes.length b in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor max 1 bit));
            Bytes.to_string b
          end
        in
        let truncated = String.sub s 0 (cut mod (String.length s + 1)) in
        [ flipped; truncated ]
      in
      List.for_all (decodes_safely Nine.decode_t)
        (mutilate (Nine.encode_t ~tag:7 t))
      && List.for_all (decodes_safely Nine.decode_r)
           (mutilate (Nine.encode_r ~tag:7 r)))

let fuzz_tests =
  List.map QCheck_alcotest.to_alcotest
    [ fuzz_arbitrary; fuzz_roundtrip_t; fuzz_roundtrip_r; fuzz_mutilated ]

(* ------------------------------------------------------------------ *)
(* Fid-table invariants: error paths must not leak fids                *)

(* a filesystem that delegates to [base] but breaks where asked *)
let breaking base ~stat_eio ~open_eio ~read_after_first =
  {
    Vfs.fs_stat =
      (fun p -> if stat_eio then raise (Vfs.Error (Vfs.Eio "stat broken"))
        else base.Vfs.fs_stat p);
    fs_open =
      (fun p mode ~trunc ->
        if open_eio then raise (Vfs.Error (Vfs.Eio "open broken"))
        else begin
          let f = base.Vfs.fs_open p mode ~trunc in
          if not read_after_first then f
          else
            {
              f with
              Vfs.of_read =
                (fun ~off ~count ->
                  if off > 0 then raise (Vfs.Error (Vfs.Eio "read broken"))
                  else f.Vfs.of_read ~off ~count);
            }
        end);
    fs_create = base.Vfs.fs_create;
    fs_remove = base.Vfs.fs_remove;
    fs_readdir = base.Vfs.fs_readdir;
  }

let fid_tests =
  [
    Alcotest.test_case "remove error still clunks the fid" `Quick (fun () ->
        let ns = Vfs.create () in
        let srv = Nine.serve_mount ns "/m" (Vfs.ramfs ns) in
        Vfs.mkdir_p ns "/m/d";
        Vfs.write_file ns "/m/d/f" "x";
        check_int "root fid only" 1 (Nine.Server.fid_count srv);
        (* removing a non-empty directory fails after a successful walk:
           per 9P the walked fid must be clunked anyway *)
        check_bool "remove refused" true
          (match Vfs.remove ns "/m/d" with
          | exception Vfs.Error Vfs.Eperm -> true
          | _ -> false);
        check_int "no leaked fid" 1 (Nine.Server.fid_count srv));
    Alcotest.test_case "readdir failure mid-loop still clunks" `Quick
      (fun () ->
        (* a transport that permanently loses every continuation read:
           the client's readdir loop gets its first chunk, then dies of
           exhausted retries mid-loop — the open fid must still be
           clunked *)
        let ns = Vfs.create () in
        let srv = Nine.Server.create (Vfs.ramfs ns) in
        let lossy packet =
          match Nine.decode_t packet with
          | _, Nine.Tread { offset; _ } when offset > 0 -> raise Nine.Timeout
          | _ -> Nine.Server.rpc srv packet
        in
        let c = Nine.Client.connect lossy in
        let outer = Vfs.create () in
        Vfs.mount outer "/m" (Nine.Client.filesystem c);
        Vfs.write_file outer "/m/f" "x";
        check_bool "readdir fails" true
          (match Vfs.readdir outer "/m" with
          | exception Vfs.Error (Vfs.Eio _) -> true
          | _ -> false);
        check_int "no leaked fid" 1 (Nine.Server.fid_count srv));
    Alcotest.test_case "short walk binds no fid, client raises Enonexist"
      `Quick (fun () ->
        let ns = Vfs.create () in
        let fs = Vfs.ramfs ns in
        let srv = Nine.Server.create fs in
        fs.Vfs.fs_create [ "a" ] ~dir:true;
        let rpc msg =
          snd (Nine.decode_r (Nine.Server.rpc srv (Nine.encode_t ~tag:1 msg)))
        in
        ignore (rpc (Nine.Tversion { msize = 8192; version = "9P2000.help" }));
        ignore (rpc (Nine.Tattach { fid = 0; uname = "u"; aname = "" }));
        (* server side: partial walk answers with fewer qids and does
           not bind newfid *)
        (match
           rpc (Nine.Twalk { fid = 0; newfid = 1; names = [ "a"; "nope" ] })
         with
        | Nine.Rwalk { qids } -> check_int "one qid" 1 (List.length qids)
        | _ -> Alcotest.fail "expected Rwalk");
        (match rpc (Nine.Tstat { fid = 1 }) with
        | Nine.Rerror _ -> ()
        | _ -> Alcotest.fail "short walk bound newfid");
        check_int "only root fid" 1 (Nine.Server.fid_count srv);
        (* client side: a short walk is Enonexist, not a dangling fid *)
        let c = Nine.Client.connect (Nine.Server.rpc srv) in
        let outer = Vfs.create () in
        Vfs.mount outer "/m" (Nine.Client.filesystem c);
        check_bool "client rejects short walk" true
          (match Vfs.stat outer "/m/a/nope/deep" with
          | exception Vfs.Error Vfs.Enonexist -> true
          | _ -> false);
        check_int "still only root fid" 1 (Nine.Server.fid_count srv));
    Alcotest.test_case "every client op leaves only the root fid" `Quick
      (fun () ->
        let ns = Vfs.create () in
        let srv = Nine.serve_mount ns "/m" (Vfs.ramfs ns) in
        Vfs.write_file ns "/m/f" "hello";
        ignore (Vfs.read_file ns "/m/f");
        ignore (Vfs.stat ns "/m/f");
        ignore (Vfs.readdir ns "/m");
        Vfs.append_file ns "/m/f" " world";
        Vfs.remove ns "/m/f";
        ignore
          (try Vfs.read_file ns "/m/f"
           with Vfs.Error Vfs.Enonexist -> "");
        check_int "no leaks" 1 (Nine.Server.fid_count srv));
  ]

(* ------------------------------------------------------------------ *)
(* Tags and msize                                                      *)

let protocol_tests =
  [
    Alcotest.test_case "client tags never collide with NOTAG" `Quick
      (fun () ->
        let ns = Vfs.create () in
        let srv = Nine.Server.create (Vfs.ramfs ns) in
        let watched packet =
          let tag, _ = Nine.decode_t packet in
          if tag = 0xffff then Alcotest.fail "client used NOTAG";
          Nine.Server.rpc srv packet
        in
        let c = Nine.Client.connect watched in
        let outer = Vfs.create () in
        Vfs.mount outer "/m" (Nine.Client.filesystem c);
        Vfs.write_file outer "/m/f" "x";
        (* every stat is walk+stat+clunk: push the tag counter through
           the 16-bit wrap at least once *)
        for _ = 1 to 22_000 do
          ignore (Vfs.stat outer "/m/f")
        done;
        check_str "still sane after wrap" "x" (Vfs.read_file outer "/m/f"));
    Alcotest.test_case "negotiated msize bounds write framing" `Quick
      (fun () ->
        let ns = Vfs.create () in
        let srv = Nine.Server.create (Vfs.ramfs ns) in
        let max_frame = ref 0 in
        let small packet =
          max_frame := max !max_frame (String.length packet);
          let reply = Nine.Server.rpc srv packet in
          match Nine.decode_r reply with
          | tag, Nine.Rversion { version; _ } ->
              (* force a tiny msize on the client *)
              Nine.encode_r ~tag (Nine.Rversion { msize = 300; version })
          | _ -> reply
        in
        let c = Nine.Client.connect small in
        let outer = Vfs.create () in
        Vfs.mount outer "/m" (Nine.Client.filesystem c);
        let big = String.init 2000 (fun i -> Char.chr (32 + (i mod 90))) in
        Vfs.write_file outer "/m/big" big;
        check_str "content intact" big (Vfs.read_file outer "/m/big");
        check_bool "frames within msize" true (!max_frame <= 300));
    Alcotest.test_case "server refuses oversized packets" `Quick (fun () ->
        let ns = Vfs.create () in
        let srv = Nine.Server.create (Vfs.ramfs ns) in
        let rpc msg =
          snd (Nine.decode_r (Nine.Server.rpc srv (Nine.encode_t ~tag:1 msg)))
        in
        ignore (rpc (Nine.Tversion { msize = 256; version = "9P2000.help" }));
        ignore (rpc (Nine.Tattach { fid = 0; uname = "u"; aname = "" }));
        match
          rpc (Nine.Twrite { fid = 0; offset = 0; data = String.make 1000 'x' })
        with
        | Nine.Rerror { ename } ->
            check_str "reason" "message too large" ename
        | _ -> Alcotest.fail "oversized packet accepted")
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)

let fault_keys =
  [ "nine.fault.injected"; "nine.fault.drop"; "nine.fault.delay";
    "nine.fault.truncate"; "nine.fault.corrupt"; "nine.fault.duplicate";
    "nine.fault.error_reply"; "nine.rpc.failed"; "nine.rpc.timeout";
    "nine.retry.walk"; "nine.retry.stat"; "nine.retry.read";
    "nine.retry.clunk" ]

let snapshot () =
  List.map (fun k -> (k, Option.value ~default:0 (Trace.find_value k)))
    fault_keys

(* a fixed little workload over a faulty mount *)
let faulty_run config =
  Trace.reset ();
  let ns = Vfs.create () in
  let srv =
    Nine.serve_mount ~wrap:(Fault.wrap config) ~max_retries:8 ns "/m"
      (Vfs.ramfs ns)
  in
  Vfs.write_file ns "/m/f" "the quick brown fox\n";
  Vfs.mkdir_p ns "/m/d";
  Vfs.write_file ns "/m/d/g" "jumps over\n";
  let acc = Buffer.create 256 in
  for _ = 1 to 60 do
    Buffer.add_string acc (Vfs.read_file ns "/m/f");
    Buffer.add_string acc (Vfs.read_file ns "/m/d/g");
    ignore (Vfs.stat ns "/m/d/g");
    ignore (Vfs.readdir ns "/m")
  done;
  (Buffer.contents acc, snapshot (), Nine.Server.fid_count srv)

let injection_tests =
  [
    Alcotest.test_case "same seed, same faults, same convergent result"
      `Quick (fun () ->
        let config = { Fault.default with seed = 42; rate = 0.3 } in
        let out1, counts1, fids1 = faulty_run config in
        let out2, counts2, fids2 = faulty_run config in
        let clean, clean_counts, _ = faulty_run { config with rate = 0.0 } in
        Trace.reset ();
        check_bool "faults actually injected" true
          (List.assoc "nine.fault.injected" counts1 > 10);
        check_bool "retries actually happened" true
          (List.assoc "nine.retry.read" counts1 > 0);
        Alcotest.(check (list (pair string int)))
          "deterministic replay" counts1 counts2;
        check_str "deterministic content" out1 out2;
        check_str "converges to the fault-free run" clean out1;
        check_int "no faults when disabled" 0
          (List.assoc "nine.fault.injected" clean_counts);
        check_int "no leaked fids" 1 fids1;
        check_int "no leaked fids (replay)" 1 fids2);
    Alcotest.test_case "different seeds give different schedules" `Quick
      (fun () ->
        let _, counts1, _ =
          faulty_run { Fault.default with seed = 1; rate = 0.3 }
        in
        let _, counts2, _ =
          faulty_run { Fault.default with seed = 2; rate = 0.3 }
        in
        Trace.reset ();
        check_bool "schedules differ" true (counts1 <> counts2));
    Alcotest.test_case "a fault-free wrapper is transparent" `Quick
      (fun () ->
        Trace.reset ();
        let ns = Vfs.create () in
        ignore
          (Nine.serve_mount
             ~wrap:(Fault.wrap { Fault.default with rate = 0.0 })
             ns "/m" (Vfs.ramfs ns));
        Vfs.write_file ns "/m/f" "untouched";
        check_str "round trip" "untouched" (Vfs.read_file ns "/m/f");
        check_int "nothing injected" 0
          (Option.value ~default:0 (Trace.find_value "nine.fault.injected"));
        Trace.reset ());
  ]

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)

let degradation_tests =
  [
    Alcotest.test_case "union falls through a broken member" `Quick
      (fun () ->
        let ns = Vfs.create () in
        let broken =
          breaking (Vfs.ramfs ns) ~stat_eio:true ~open_eio:true
            ~read_after_first:false
        in
        let good = Vfs.ramfs ns in
        Vfs.mount ns "/u" broken;
        Vfs.bind_after ns "/u" good;
        (* write lands in the healthy member, read falls through *)
        Vfs.write_file ns "/u/f" "degraded but alive";
        check_str "read through union" "degraded but alive"
          (Vfs.read_file ns "/u/f"));
    Alcotest.test_case "a union of only broken members reports Eio" `Quick
      (fun () ->
        let ns = Vfs.create () in
        let broken =
          breaking (Vfs.ramfs ns) ~stat_eio:true ~open_eio:true
            ~read_after_first:false
        in
        Vfs.mount ns "/u" broken;
        check_bool "Eio, not Enonexist" true
          (match Vfs.read_file ns "/u/f" with
          | exception Vfs.Error (Vfs.Eio _) -> true
          | _ -> false));
    Alcotest.test_case "a built-in dying of Eio lands in the tag line"
      `Quick (fun () ->
        let ns = Vfs.create () in
        let sh = Rc.create ns in
        Coreutils.install sh;
        let help = Help.create ~w:80 ~h:24 ns sh in
        (* stat succeeds, open fails: the shape of a transport that dies
           mid-command after its retries are exhausted *)
        let flaky =
          breaking (Vfs.ramfs ns) ~stat_eio:false ~open_eio:true
            ~read_after_first:false
        in
        flaky.Vfs.fs_create [ "f" ] ~dir:false;
        Vfs.mount ns "/broken" flaky;
        let w = Help.new_window help ~body:"" () in
        Help.execute help w "Open /broken/f";
        check_bool "error note in the tag" true
          (Hstr.contains (Hwin.tag_text w) ~sub:"!");
        check_bool "reported to Errors" true
          (match Help.window_by_name help "Errors" with
          | Some errw ->
              Hstr.contains
                (Htext.string (Hwin.body errw))
                ~sub:"open broken"
          | None -> false));
    Alcotest.test_case "a mount that cannot connect leaves no residue"
      `Quick (fun () ->
        let ns = Vfs.create () in
        Vfs.mkdir_p ns "/mnt";
        let dead _ = raise Nine.Timeout in
        check_bool "serve_mount raises" true
          (match Nine.serve_mount ~wrap:(fun _ -> dead) ns "/mnt/h"
                   (Vfs.ramfs ns)
           with
          | exception Vfs.Error (Vfs.Eio _) -> true
          | _ -> false);
        (* the namespace is consistent: nothing half-mounted *)
        check_bool "no mount left behind" true
          (match Vfs.readdir ns "/mnt" with
          | entries ->
              not (List.exists (fun e -> e.Vfs.st_name = "h") entries)
          | exception Vfs.Error _ -> false);
        (* and mounting over a healthy transport there still works *)
        ignore (Nine.serve_mount ns "/mnt/h" (Vfs.ramfs ns));
        Vfs.write_file ns "/mnt/h/f" "recovered";
        check_str "second attempt works" "recovered"
          (Vfs.read_file ns "/mnt/h/f"));
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fault"
    [
      ("codec-fuzz", fuzz_tests);
      ("fid-invariants", fid_tests);
      ("tags-and-msize", protocol_tests);
      ("fault-injection", injection_tests);
      ("degradation", degradation_tests);
    ]
