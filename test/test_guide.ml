(* The guide: man pages parsed into a clickable model, rendered as
   windows, served in-band, and driven entirely by mouse. *)

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec f i = i + n <= m && (String.sub hay i n = needle || f (i + 1)) in
  n = 0 || f 0

let page_of text = Guide.parse ~file:"test" text

let wrap synopsis =
  "# TESTPAGE(9)\n\n## NAME\n\ntestpage \xe2\x80\x94 a synthetic page\n\n\
   ## SYNOPSIS\n\n" ^ synopsis ^ "\n"

(* ------------------------------------------------------------------ *)
(* Parser units                                                        *)

let parser_tests =
  [
    Alcotest.test_case "title, name and section" `Quick (fun () ->
        let p = page_of (wrap "`foo`") in
        check_str "name" "testpage" p.Guide.p_name;
        check_int "section" 9 p.Guide.p_section;
        check_str "title" "a synthetic page" p.Guide.p_title;
        Alcotest.(check (list string)) "no warnings" [] p.Guide.p_warnings);
    Alcotest.test_case "synopsis grammar" `Quick (fun () ->
        let p =
          page_of (wrap "`foo -a bar` *x* *[y ...]* \xc2\xb7 `foo` *z*")
        in
        Alcotest.(check int) "two entries" 2 (List.length p.Guide.p_invocations);
        let i1 = List.nth p.Guide.p_invocations 0 in
        check_str "cmd" "foo" i1.Guide.i_cmd;
        check_bool "items" true
          (i1.Guide.i_items
          = [
              Guide.S_flag "-a"; Guide.S_lit "bar"; Guide.S_arg "x";
              Guide.S_opt "y ...";
            ]);
        let i2 = List.nth p.Guide.p_invocations 1 in
        check_bool "second" true (i2.Guide.i_items = [ Guide.S_arg "z" ]));
    Alcotest.test_case "drift warns, never raises" `Quick (fun () ->
        let p = page_of (wrap "`$path` \xc2\xb7 *orphan*") in
        check_int "no invocations" 0 (List.length p.Guide.p_invocations);
        check_int "two warnings" 2 (List.length p.Guide.p_warnings));
    Alcotest.test_case "only the first paragraph is machine-read" `Quick
      (fun () ->
        let p = page_of (wrap "`foo`\n\n(prose mentioning `$path` freely)") in
        check_int "one entry" 1 (List.length p.Guide.p_invocations);
        Alcotest.(check (list string)) "no warnings" [] p.Guide.p_warnings);
    Alcotest.test_case "command sections explode multi-name entries" `Quick
      (fun () ->
        let text =
          wrap "`foo`"
          ^ "\n## COMMANDS\n\n`a`, `b`\n: Both of them.\n\n`s` */re/*\n\
             : Substitute.\n"
        in
        let p = page_of text in
        let names = List.map (fun v -> v.Guide.v_name) p.Guide.p_verbs in
        check_bool "names" true (names = [ "a"; "b"; "s" ]);
        let s = List.nth p.Guide.p_verbs 2 in
        check_bool "args" true (s.Guide.v_args = [ "/re/" ]);
        check_str "desc" "Substitute." s.Guide.v_desc);
    Alcotest.test_case "see also references" `Quick (fun () ->
        let text =
          wrap "`foo`" ^ "\n## SEE ALSO\n\nhelp(1), nine(5), help(1) again.\n"
        in
        let p = page_of text in
        check_bool "deduped, ordered" true
          (p.Guide.p_see = [ ("help", 1); ("nine", 5) ]));
  ]

(* ------------------------------------------------------------------ *)
(* Round trip: synopsis_string is the inverse of parse                 *)

let inv_gen =
  let open QCheck.Gen in
  let word =
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 1 6)
         (map Char.chr (int_range (Char.code 'a') (Char.code 'z'))))
  in
  let span_item =
    oneof
      [
        map (fun w -> Guide.S_flag ("-" ^ w)) word;
        map (fun w -> Guide.S_lit w) word;
      ]
  in
  let ital_item =
    oneof
      [
        map (fun w -> Guide.S_arg w) word;
        map (fun w -> Guide.S_opt (w ^ " ...")) word;
      ]
  in
  let inv =
    map2
      (fun cmd (spans, itals) -> { Guide.i_cmd = cmd; i_items = spans @ itals })
      word
      (pair (list_size (int_range 0 3) span_item)
         (list_size (int_range 0 2) ital_item))
  in
  list_size (int_range 1 3) inv

let prop_roundtrip =
  QCheck.Test.make ~name:"generated SYNOPSIS lines round-trip" ~count:300
    (QCheck.make
       ~print:(fun invs ->
         String.concat " \xc2\xb7 " (List.map Guide.synopsis_string invs))
       inv_gen)
    (fun invs ->
      let line =
        String.concat " \xc2\xb7 " (List.map Guide.synopsis_string invs)
      in
      let p = page_of (wrap line) in
      p.Guide.p_warnings = [] && p.Guide.p_invocations = invs)

(* ------------------------------------------------------------------ *)
(* The embedded manual                                                 *)

let manual_tests =
  [
    Alcotest.test_case "every page parses warning-free and clickable" `Quick
      (fun () ->
        let ps = Guide.pages () in
        check_int "eight pages" 8 (List.length ps);
        List.iter
          (fun p ->
            Alcotest.(check (list string))
              (p.Guide.p_name ^ " warnings")
              [] p.Guide.p_warnings;
            check_bool (p.Guide.p_name ^ " named") true
              (p.Guide.p_name <> "" && p.Guide.p_title <> ""
             && p.Guide.p_section > 0);
            check_bool (p.Guide.p_name ^ " has invocations") true
              (p.Guide.p_invocations <> []);
            List.iter
              (fun inv ->
                check_bool
                  (p.Guide.p_name ^ ": " ^ Guide.invocation_text inv
                 ^ " composes")
                  true
                  (Guide.synopsis_command inv <> None))
              p.Guide.p_invocations)
          ps);
    Alcotest.test_case "help page documents exactly the built-ins" `Quick
      (fun () ->
        match Guide.find "help" with
        | None -> Alcotest.fail "no help page"
        | Some p ->
            let names =
              List.sort_uniq compare
                (List.map (fun v -> v.Guide.v_name) p.Guide.p_verbs)
            in
            check_bool "same set" true
              (names = List.sort_uniq compare Help.builtins));
    Alcotest.test_case "model spot checks" `Quick (fun () ->
        (match Guide.find "mk" with
        | Some p ->
            check_bool "mk -modified documented" true
              (List.exists
                 (fun i -> List.mem (Guide.S_flag "-modified") i.Guide.i_items)
                 p.Guide.p_invocations)
        | None -> Alcotest.fail "no mk page");
        (match Guide.find "mail" with
        | Some p ->
            check_bool "mail verbs are the scripts" true
              (List.map (fun v -> v.Guide.v_name) p.Guide.p_verbs
              = [ "headers"; "messages"; "delete"; "reread"; "send" ])
        | None -> Alcotest.fail "no mail page");
        match Guide.find "guide" with
        | Some p ->
            check_bool "guide sees helpfs(4)" true
              (List.mem ("helpfs", 4) p.Guide.p_see);
            check_bool "served files documented" true
              (List.mem "/mnt/help/guide" p.Guide.p_files)
        | None -> Alcotest.fail "no guide page");
    Alcotest.test_case "embedded sources match doc/ on disk" `Quick (fun () ->
        (* the build embeds doc/*.md; the lint gate re-checks this from
           the repo root, the test from the build sandbox is skipped
           when the files are not around *)
        List.iter
          (fun (file, embedded) ->
            let path = "../doc/" ^ file in
            if Sys.file_exists path then begin
              let ic = open_in_bin path in
              let n = in_channel_length ic in
              let disk = really_input_string ic n in
              close_in ic;
              check_bool (file ^ " in sync") true (disk = embedded)
            end)
          Guide.sources);
  ]

(* ------------------------------------------------------------------ *)
(* The windowed application, driven by mouse                           *)

let counter name =
  match Trace.find_value name with Some v -> v | None -> 0

let session_tests =
  [
    Alcotest.test_case "guide tool is on the boot screen" `Quick (fun () ->
        let t = Session.boot () in
        let stf = Session.win t "/help/guide/stf" in
        check_bool "stf lists the pages" true
          (contains (Htext.string (Hwin.body stf)) "guide help"));
    Alcotest.test_case "browse and run without the keyboard" `Quick (fun () ->
        let t = Session.boot () in
        check_int "no pages yet" 0 (counter "guide.pages");
        let stf = Session.win t "/help/guide/stf" in
        (* middle-click `guide`: the index window *)
        Session.exec_word t stf "guide";
        let index = Session.win t "/help/guide/index" in
        check_bool "index lists every page" true
          (contains (Htext.string (Hwin.body index)) "guide helpfs");
        (* middle-sweep `guide help`: the help(1) page *)
        Session.exec_sweep t stf "guide help";
        let help_pg = Session.win t "/help/guide/help" in
        let body () = Htext.string (Hwin.body help_pg) in
        check_bool "RUN composed" true (contains (body ()) " New");
        check_bool "COMMANDS listed" true (contains (body ()) "Split!");
        (* SEE ALSO is itself a guide command: hop to helpfs(4) *)
        Session.exec_sweep t help_pg "guide helpfs";
        let helpfs_pg = Session.win t "/help/guide/helpfs" in
        let hbody = Htext.string (Hwin.body helpfs_pg) in
        check_bool "helpfs RUN" true (contains hbody "cat /mnt/help/stats");
        (* select a RUN line, click run in the tag: output window *)
        Session.point_at t helpfs_pg "cat /mnt/help/stats";
        Session.exec_tag_word t helpfs_pg "run";
        let out = Session.win t "/help/guide/out" in
        let obody = Htext.string (Hwin.body out) in
        check_bool "echoed" true (contains obody "% cat /mnt/help/stats");
        check_bool "ran" true (contains obody "guide.pages");
        (* the ledger saw all of it *)
        check_int "pages" 3 (counter "guide.pages");
        check_int "invocations" 1 (counter "guide.invocations");
        check_int "clicks" 4 (counter "guide.clicks");
        check_int "keys" 0 (Metrics.total t.Session.metrics).Metrics.keys);
    Alcotest.test_case "a page is refreshed in place, not duplicated" `Quick
      (fun () ->
        let t = Session.boot () in
        let stf = Session.win t "/help/guide/stf" in
        Session.exec_sweep t stf "guide help";
        let n1 = List.length (Help.windows t.Session.help) in
        Session.exec_sweep t stf "guide help";
        let n2 = List.length (Help.windows t.Session.help) in
        check_int "same window count" n1 n2;
        check_int "both visits counted" 2 (counter "guide.pages"));
    Alcotest.test_case "a built-in RUN line is reported, not mis-run" `Quick
      (fun () ->
        let t = Session.boot () in
        let stf = Session.win t "/help/guide/stf" in
        Session.exec_sweep t stf "guide help";
        let pg = Session.win t "/help/guide/help" in
        Session.point_at t pg " New";
        Session.exec_tag_word t pg "run";
        let out = Session.win t "/help/guide/out" in
        check_bool "notes the built-in" true
          (contains (Htext.string (Hwin.body out)) "built-in"));
    Alcotest.test_case "the model is served in-band" `Quick (fun () ->
        let t = Session.boot () in
        let r = Rc.run t.Session.sh "cat /mnt/help/guide" in
        check_int "index status" 0 r.Rc.r_status;
        check_bool "index line" true (contains r.Rc.r_out "help\t1\t");
        let r = Rc.run t.Session.sh "cat /mnt/help/guide/mk" in
        check_int "page status" 0 r.Rc.r_status;
        check_bool "name line" true (contains r.Rc.r_out "name mk");
        check_bool "invocation line" true
          (contains r.Rc.r_out "invocation mk -modified");
        let r = Rc.run t.Session.sh "cat /mnt/help/guide/nosuch" in
        check_bool "unknown page errors" true (r.Rc.r_status <> 0));
    Alcotest.test_case "two scripted sessions render identically" `Quick
      (fun () ->
        let drive () =
          let t = Session.boot () in
          let stf = Session.win t "/help/guide/stf" in
          Session.exec_word t stf "guide";
          Session.exec_sweep t stf "guide ed";
          let pg = Session.win t "/help/guide/ed" in
          Session.exec_sweep t pg "guide help";
          Session.dump t
        in
        check_str "byte-identical" (drive ()) (drive ()));
  ]

let () =
  Alcotest.run "guide"
    [
      ("parser", parser_tests);
      ("property", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
      ("manual", manual_tests);
      ("session", session_tests);
    ]
