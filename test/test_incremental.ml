(* The incremental pipeline must be invisible: damage-tracked drawing,
   the per-unit analysis cache, the regexp LRU and the connectivity
   memo all have to produce exactly what the from-scratch computation
   produces.  These tests drive each cache through randomized histories
   and compare against the uncached path. *)

let mk_help () =
  let ns = Vfs.create () in
  Corpus.install ns;
  let sh = Rc.create ns in
  Coreutils.install sh;
  let help = Help.create ~w:90 ~h:30 ns sh in
  List.iteri
    (fun i f ->
      if i < 3 then
        ignore (Help.open_file help ~dir:"/" (Corpus.src_dir ^ "/" ^ f)))
    Corpus.c_files;
  help

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let draw_cache_effective () =
  let help = mk_help () in
  ignore (Help.draw help);
  ignore (Help.draw help);
  let draws, full, cols, wins, clean = Help.draw_stats help in
  check_int "two draws" 2 draws;
  check_int "one full repaint (the first)" 1 full;
  check_int "no column repaints" 0 cols;
  check_int "no window repaints on the quiet second draw" 0 wins;
  check_bool "second draw found clean windows" true (clean > 0)

let draw_snapshot_is_private () =
  let help = mk_help () in
  let s1 = Help.draw help in
  Screen.set s1 ~x:0 ~y:0 'Z' Screen.Plain;
  let s2 = Help.draw help in
  check_bool "mutating a snapshot does not leak into the next draw" true
    (Screen.get s2 ~x:0 ~y:0 <> ('Z', Screen.Plain))

let corpus_cached_analyze () =
  let ns = Vfs.create () in
  Corpus.install ns;
  let idx = Cbr.create_index () in
  let dir = Corpus.src_dir in
  let files = Corpus.c_files in
  let eq label =
    check_bool label true
      (Cbr.analyze ~index:idx ns ~cwd:dir files = Cbr.analyze ns ~cwd:dir files)
  in
  eq "cold cache equals fresh analysis";
  eq "warm cache equals fresh analysis";
  Vfs.append_file ns (dir ^ "/text.c") "\nint probe_incremental;\n";
  eq "after an edit the cache re-parses just that unit";
  let hits, misses = Cbr.index_stats idx in
  check_bool "the cache both hit and missed" true (hits > 0 && misses > 0);
  check_bool "edits cost misses, not a flush" true (hits > misses)

let regexp_lru () =
  let a = Regexp.compile "ab+c" in
  let b = Regexp.compile "ab+c" in
  check_bool "repeated compile returns the memoized program" true (a == b);
  let c = Regexp.compile_uncached "ab+c" in
  check_bool "compile_uncached is fresh" true (c != a);
  check_bool "cached and uncached agree" true
    (Regexp.search a "xxabbbcyy" 0 = Regexp.search c "xxabbbcyy" 0);
  check_bool "errors stay uncached and still raise" true
    (match Regexp.compile "(ab" with
    | exception Regexp.Parse_error _ -> true
    | _ -> false)

(* The lazy DFA's bounded state cache must be deterministic: the same
   workload after a [Trace.reset] (or a [Session.boot], which resets)
   builds the same states, flushes at the same points, and moves the
   regexp.dfa.* counters by the same deltas. *)
let dfa_flush_determinism () =
  let counters () =
    let v name = match Trace.find_value name with Some v -> v | None -> 0 in
    ( v "regexp.dfa.cache_hit",
      v "regexp.dfa.cache_miss",
      v "regexp.dfa.flush" )
  in
  let workload () =
    (* fresh program so the DFA is rebuilt from nothing each run; the
       absent 'c' forces a full scan that overflows a tiny cache *)
    let re = Regexp.compile_uncached "a[ab][ab][ab][ab]c" in
    let hay =
      String.concat "" (List.init 40 (fun i -> if i mod 2 = 0 then "ab" else "ba"))
    in
    ignore (Regexp.search re hay 0);
    ignore (Regexp.matches re (hay ^ "x"));
    ignore (Regexp.search re ("zz" ^ hay) 1);
    (Regexp.dfa_state_count re, Regexp.dfa_flush_count re, counters ())
  in
  Regexp.set_dfa_capacity 8;
  Trace.reset ();
  let base1 = counters () in
  let r1 = workload () in
  Trace.reset ();
  let base2 = counters () in
  let r2 = workload () in
  ignore (Session.boot ());
  let base3 = counters () in
  let r3 = workload () in
  Regexp.set_dfa_capacity 256;
  check_bool "reset zeroes the regexp.dfa counters" true
    (base1 = (0, 0, 0) && base2 = (0, 0, 0) && base3 = (0, 0, 0));
  check_bool "identical workload after Trace.reset is identical" true (r1 = r2);
  check_bool "identical workload after Session.boot is identical" true (r1 = r3);
  let _, flushes, _ = r1 in
  check_bool "the tiny cache really flushed" true (flushes > 0)

let connectivity_memo () =
  let help = mk_help () in
  let cache = Metrics.create_conn_cache () in
  let eq label =
    check_int label (Metrics.connectivity help) (Metrics.connectivity ~cache help)
  in
  eq "cold memo equals uncached";
  eq "warm memo equals uncached";
  (match Help.windows help with
  | w :: _ -> Help.append_body help w "\nmkfile /lib/news stray-token"
  | [] -> ());
  eq "after a body edit the memo still agrees";
  ignore (Help.open_file help ~dir:"/" "/lib/news");
  eq "after a namespace change the memo still agrees";
  (* mutating $path directly changes what resolves — the env generation
     must flush the memo even though the namespace did not move *)
  Rc.set_global (Help.shell help) "path" [];
  eq "after a direct $path change the memo still agrees";
  let hits, misses = Metrics.conn_cache_stats cache in
  check_bool "the memo did real work" true (hits > 0 && misses > 0)

let unit_tests =
  [
    Alcotest.test_case "quiet draws are all-clean" `Quick draw_cache_effective;
    Alcotest.test_case "draw returns a private snapshot" `Quick
      draw_snapshot_is_private;
    Alcotest.test_case "cbr cache on the real corpus" `Quick
      corpus_cached_analyze;
    Alcotest.test_case "regexp compile LRU" `Quick regexp_lru;
    Alcotest.test_case "dfa cache flush is deterministic under reset" `Quick
      dfa_flush_determinism;
    Alcotest.test_case "connectivity memo" `Quick connectivity_memo;
  ]

(* ------------------------------------------------------------------ *)
(* Property: the damage-tracked screen is byte-identical to a          *)
(* from-scratch draw after any event history.                          *)

let buttons = [| Help.Left; Help.Middle; Help.Right |]

let apply_op help (tag, a, b) =
  match tag mod 8 with
  | 0 | 1 -> Help.event help (Help.Move (a mod 90, b mod 30))
  | 2 -> Help.event help (Help.Press buttons.(a mod 3))
  | 3 -> Help.event help (Help.Release buttons.(a mod 3))
  | 4 -> Help.event help (Help.Key (Char.chr (97 + (a mod 26))))
  | 5 ->
      let files = Corpus.c_files in
      let f = List.nth files (a mod List.length files) in
      ignore (Help.open_file help ~dir:"/" (Corpus.src_dir ^ "/" ^ f))
  | 6 -> (
      match Help.windows help with
      | _ :: _ :: _ as ws ->
          Help.close_window help (List.nth ws (a mod List.length ws))
      | _ -> ())
  | _ -> (
      match Help.windows help with
      | [] -> ()
      | ws ->
          let w = List.nth ws (a mod List.length ws) in
          ignore (Help.ctl_command help w (Printf.sprintf "show %d" (b mod 500))))

let ops_gen =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 25)
        (triple (int_range 0 7) (int_range 0 1000) (int_range 0 1000)))

let prop_draw_identical =
  QCheck.Test.make
    ~name:"damage-tracked redraw is byte-identical to a from-scratch draw"
    ~count:40 ops_gen (fun ops ->
      let help = mk_help () in
      List.for_all
        (fun op ->
          apply_op help op;
          Screen.equal (Help.redraw help) (Help.draw_full help))
        ops)

(* ------------------------------------------------------------------ *)
(* Property: the unit-cached analysis equals the fresh analysis after  *)
(* any history of file edits, header edits, rewrites, and no-op        *)
(* touches.                                                            *)

let modules = 5

let mutate ns dir (sel, variant) =
  let unit_path = Printf.sprintf "%s/mod%03d.c" dir (sel mod modules) in
  match variant mod 8 with
  | 0 | 1 | 2 ->
      Vfs.append_file ns unit_path
        (Printf.sprintf "\nint extra%d_%d;\n" sel variant)
  | 3 | 4 ->
      (* a header edit: every unit sees the new typedef *)
      Vfs.append_file ns (dir ^ "/big.h")
        (Printf.sprintf "typedef int td%d_%d;\n" sel variant)
  | 5 ->
      (* touch without change: must be all cache hits *)
      Vfs.write_file ns unit_path (Vfs.read_file ns unit_path)
  | 6 ->
      Vfs.append_file ns unit_path
        (Printf.sprintf "\nint broken%d(  /* unclosed */\n" sel)
  | _ ->
      Vfs.write_file ns unit_path
        (Printf.sprintf
           "#include \"big.h\"\n\nstatic int solo%d(int v)\n{\n\treturn v + %d;\n}\n"
           sel variant)

let edits_gen =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 6) (pair (int_range 0 20) (int_range 0 20)))

let prop_analyze_identical =
  QCheck.Test.make ~name:"unit-cached analysis equals fresh analysis"
    ~count:25 edits_gen (fun edits ->
      let ns = Vfs.create () in
      let dir = Corpus.install_synthetic ns ~modules in
      let files = List.init modules (fun i -> Printf.sprintf "mod%03d.c" i) in
      let idx = Cbr.create_index () in
      let agree () =
        Cbr.analyze ~index:idx ns ~cwd:dir files = Cbr.analyze ns ~cwd:dir files
      in
      agree ()
      && List.for_all
           (fun edit ->
             mutate ns dir edit;
             agree ())
           edits)

let () =
  Alcotest.run "incremental"
    [
      ("unit", unit_tests);
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_draw_identical; prop_analyze_identical ] );
    ]
