(* The trigram index: planner soundness, staleness under edits, and
   the generation-counter contract (unchanged generation => zero
   re-tokenizations). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let re = Regexp.compile

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let planner_basics () =
  check_bool "a long literal is useful" true
    (Index.query_useful (Index.plan_literal "counter42"));
  check_bool "a two-byte literal is not" false
    (Index.query_useful (Index.plan_literal "ab"));
  check_bool "a bare class falls back" false
    (Index.query_useful (Index.plan (re "[a-z]+")));
  check_bool "runs across operators still contribute" true
    (Index.query_useful (Index.plan (re "line [0-9]+ of")));
  check_bool "alternation of literals is useful" true
    (Index.query_useful (Index.plan (re "alpha|bravo")));
  check_bool "alternation with a short branch falls back" false
    (Index.query_useful (Index.plan (re "alpha|ab")));
  check_bool "plus requires its body once" true
    (Index.query_useful (Index.plan (re "(abc)+")));
  check_string "query rendering"
    "(AND abc bcd)"
    (Index.query_text (Index.plan_literal "abcd"))

(* ------------------------------------------------------------------ *)
(* Files: pruning equals the linear scan, at rest and under edits      *)

let mk_tree () =
  let ns = Vfs.create () in
  Vfs.mkdir_p ns "/src";
  let files =
    List.init 6 (fun i -> Printf.sprintf "/src/f%d.txt" i)
  in
  List.iteri
    (fun i p ->
      Vfs.write_file ns p
        (Printf.sprintf "alpha %d\nbravo %d\nneedle%d here\n" i i i))
    files;
  (ns, files)

let same_results ix ns files pat =
  ignore ns;
  let r = re pat in
  Index.hits_text (Index.grep ix r files)
  = Index.hits_text (Index.grep_linear ix r files)

let files_indexed_equals_linear () =
  let ns, files = mk_tree () in
  let ix = Index.create ns in
  List.iter
    (fun pat ->
      check_bool ("indexed = linear: " ^ pat) true
        (same_results ix ns files pat))
    [ "needle3"; "alpha"; "bravo [0-9]"; "nothing-anywhere"; "[a-z]+ [0-9]+" ];
  (* candidate selection actually pruned something *)
  let docs, _, posts = Index.sizes ix in
  check_int "all files tokenized" 6 docs;
  check_bool "postings exist" true (posts > 0);
  (* edit one file: the next query must see the new text *)
  Vfs.write_file ns "/src/f2.txt" "fresh needle9 text\n";
  check_bool "after edit: indexed = linear" true
    (same_results ix ns files "needle9");
  let hits = Index.grep ix (re "needle9") files in
  check_int "edited file found" 1 (List.length hits);
  (* remove a file: pruned scans and linear scans agree on the gap *)
  Vfs.remove ns "/src/f4.txt";
  check_bool "after remove: indexed = linear" true
    (same_results ix ns files "needle4")

let generation_counters () =
  let ns, files = mk_tree () in
  let ix = Index.create ns in
  ignore (Index.grep ix (re "alpha") files);
  let r0 = Index.reindexed ix in
  (* no namespace mutation between queries: nothing may re-tokenize *)
  ignore (Index.grep ix (re "bravo") files);
  ignore (Index.grep ix (re "needle2") files);
  check_int "unchanged generation => zero re-tokenizations" r0
    (Index.reindexed ix);
  (* one edit, many queries: exactly one re-tokenization *)
  Vfs.write_file ns "/src/f1.txt" "bravo rewritten\n";
  ignore (Index.grep ix (re "bravo") files);
  ignore (Index.grep ix (re "bravo") files);
  check_int "one edit => one re-tokenization" (r0 + 1) (Index.reindexed ix)

let rebuild_control () =
  let ns, files = mk_tree () in
  let ix = Index.create ns in
  ignore (Index.grep ix (re "alpha") files);
  let _, _, posts = Index.sizes ix in
  Index.rebuild ix;
  let _, _, posts' = Index.sizes ix in
  check_int "rebuild drops the postings" 0 posts';
  check_bool "and the next query rebuilds them" true
    (same_results ix ns files "needle1"
    && (let _, _, p = Index.sizes ix in p = posts))

(* ------------------------------------------------------------------ *)
(* Buffers: the qcheck edit-script property                            *)

let patterns =
  [ "abc"; "abcd"; "bc ab"; "cab|bac"; "a[ab]c"; "zzzz"; "ab+c" ]

(* Ops: insert a small string drawn from a 4-letter alphabet, or
   delete a range.  Positions are taken modulo the live length. *)
let ops_gen =
  QCheck.make
    ~print:
      QCheck.Print.(
        list (pair int (pair int (option (string)))))
    QCheck.Gen.(
      list_size (int_range 1 30)
        (pair (int_range 0 10000)
           (pair (int_range 0 12)
              (option (string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; ' ' ]) (int_range 1 8))))))

let apply_op buf (pos, (len, ins)) =
  let n = Buffer0.length buf in
  let pos = if n = 0 then 0 else pos mod (n + 1) in
  (match ins with
  | Some s -> Buffer0.insert buf pos s
  | None -> Buffer0.delete buf pos (min len (n - pos)));
  Buffer0.commit buf

let prop_buffer_edits =
  QCheck.Test.make
    ~name:"indexed buffer search equals linear search under any edit script"
    ~count:60 ops_gen (fun ops ->
      let ns = Vfs.create () in
      let ix = Index.create ns in
      let buf = Buffer0.create "abc abd cab\nbac abcd\n" in
      Index.add_buffer ix ~name:"scratch" buf;
      List.for_all
        (fun op ->
          apply_op buf op;
          List.for_all
            (fun pat ->
              let r = re pat in
              Index.hits_text (Index.grep_buffers ix r)
              = Index.hits_text (Index.grep_buffers_linear ix r))
            patterns)
        ops)

let buffer_generations () =
  let ns = Vfs.create () in
  let ix = Index.create ns in
  let buf = Buffer0.create "abc abd\n" in
  Index.add_buffer ix ~name:"b" buf;
  ignore (Index.grep_buffers ix (re "abc"));
  let r0 = Index.reindexed ix in
  ignore (Index.grep_buffers ix (re "abd"));
  check_int "clean buffer is not re-tokenized" r0 (Index.reindexed ix);
  Buffer0.insert buf 0 "xyz ";
  Buffer0.commit buf;
  ignore (Index.grep_buffers ix (re "xyz"));
  check_int "dirty buffer re-tokenizes once" (r0 + 1) (Index.reindexed ix);
  Index.remove_buffer ix buf;
  check_int "closed buffer leaves no hits" 0
    (List.length (Index.grep_buffers ix (re "abc")))

let () =
  Alcotest.run "index"
    [
      ( "planner",
        [ Alcotest.test_case "trigram extraction" `Quick planner_basics ] );
      ( "files",
        [
          Alcotest.test_case "indexed grep equals linear" `Quick
            files_indexed_equals_linear;
          Alcotest.test_case "generation counters" `Quick generation_counters;
          Alcotest.test_case "rebuild control" `Quick rebuild_control;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "buffer generations" `Quick buffer_generations;
          QCheck_alcotest.to_alcotest prop_buffer_edits;
        ] );
    ]
