(* Nine: codec round-trips (unit + property) and a full client/server
   conversation against a RAM file system. *)

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let roundtrip_t msg =
  let tag = 7 in
  let tag', msg' = Nine.decode_t (Nine.encode_t ~tag msg) in
  Alcotest.(check int) "tag" tag tag';
  msg'

let roundtrip_r msg =
  let tag = 9 in
  let tag', msg' = Nine.decode_r (Nine.encode_r ~tag msg) in
  Alcotest.(check int) "tag" tag tag';
  msg'

let qid = { Nine.q_type = Nine.qtdir; q_version = 3; q_path = 0x1234 }

let codec_tests =
  [
    Alcotest.test_case "Tversion" `Quick (fun () ->
        match roundtrip_t (Nine.Tversion { msize = 8192; version = "9P2000.help" }) with
        | Nine.Tversion { msize; version } ->
            check_int "msize" 8192 msize;
            check_str "version" "9P2000.help" version
        | _ -> Alcotest.fail "wrong message");
    Alcotest.test_case "Twalk with names" `Quick (fun () ->
        match
          roundtrip_t (Nine.Twalk { fid = 1; newfid = 2; names = [ "a"; "b"; "c" ] })
        with
        | Nine.Twalk { fid; newfid; names } ->
            check_int "fid" 1 fid;
            check_int "newfid" 2 newfid;
            Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ] names
        | _ -> Alcotest.fail "wrong message");
    Alcotest.test_case "Twrite binary-safe payload" `Quick (fun () ->
        let data = String.init 256 Char.chr in
        match roundtrip_t (Nine.Twrite { fid = 4; offset = 99; data }) with
        | Nine.Twrite { fid; offset; data = d } ->
            check_int "fid" 4 fid;
            check_int "offset" 99 offset;
            check_str "data" data d
        | _ -> Alcotest.fail "wrong message");
    Alcotest.test_case "Tread large offset (64-bit)" `Quick (fun () ->
        match
          roundtrip_t (Nine.Tread { fid = 1; offset = 0x1_0000_0000; count = 10 })
        with
        | Nine.Tread { offset; _ } -> check_int "offset" 0x1_0000_0000 offset
        | _ -> Alcotest.fail "wrong message");
    Alcotest.test_case "Ropen / Rwalk / Rerror" `Quick (fun () ->
        (match roundtrip_r (Nine.Ropen { qid; iounit = 8192 }) with
        | Nine.Ropen { qid = q; iounit } ->
            check_int "iounit" 8192 iounit;
            check_bool "dir bit" true (q.Nine.q_type land Nine.qtdir <> 0)
        | _ -> Alcotest.fail "wrong message");
        (match roundtrip_r (Nine.Rwalk { qids = [ qid; qid ] }) with
        | Nine.Rwalk { qids } -> check_int "qids" 2 (List.length qids)
        | _ -> Alcotest.fail "wrong message");
        match roundtrip_r (Nine.Rerror { ename = "file does not exist" }) with
        | Nine.Rerror { ename } -> check_str "ename" "file does not exist" ename
        | _ -> Alcotest.fail "wrong message");
    Alcotest.test_case "stat encode/decode" `Quick (fun () ->
        let st = { Nine.s9_name = "body"; s9_qid = qid; s9_length = 42; s9_mtime = 7 } in
        match Nine.decode_stats (Nine.encode_stat st ^ Nine.encode_stat st) with
        | [ a; b ] ->
            check_str "name" "body" a.Nine.s9_name;
            check_int "length" 42 b.Nine.s9_length
        | _ -> Alcotest.fail "wrong count");
    Alcotest.test_case "malformed packets raise Bad_message" `Quick (fun () ->
        check_bool "short" true
          (match Nine.decode_t "\x03\x00\x00" with
          | exception Nine.Bad_message _ -> true
          | _ -> false);
        let good = Nine.encode_t ~tag:1 (Nine.Tclunk { fid = 1 }) in
        let truncated = String.sub good 0 (String.length good - 1) in
        check_bool "size mismatch" true
          (match Nine.decode_t truncated with
          | exception Nine.Bad_message _ -> true
          | _ -> false));
  ]

(* property: arbitrary Twrite payloads and Twalk names round-trip *)
let prop_twrite =
  QCheck.Test.make ~name:"Twrite round-trips arbitrary bytes" ~count:300
    QCheck.(pair small_nat (QCheck.make QCheck.Gen.(string_size (int_range 0 200))))
    (fun (off, data) ->
      match Nine.decode_t (Nine.encode_t ~tag:3 (Nine.Twrite { fid = 1; offset = off; data })) with
      | _, Nine.Twrite { offset; data = d; _ } -> offset = off && d = data
      | _ -> false)

let prop_twalk =
  QCheck.Test.make ~name:"Twalk round-trips name lists" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 8)
       (QCheck.make QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 33 126)) (int_range 1 20))))
    (fun names ->
      match Nine.decode_t (Nine.encode_t ~tag:3 (Nine.Twalk { fid = 0; newfid = 1; names })) with
      | _, Nine.Twalk { names = n; _ } -> n = names
      | _ -> false)

(* end-to-end: mount a ramfs through the protocol *)
let e2e_tests =
  [
    Alcotest.test_case "read/write through the mount" `Quick (fun () ->
        let ns = Vfs.create () in
        let backing = Vfs.ramfs ns in
        let srv = Nine.serve_mount ns "/mnt/nine" backing in
        Vfs.write_file ns "/mnt/nine/f" "over the wire";
        check_str "read back" "over the wire" (Vfs.read_file ns "/mnt/nine/f");
        let stats = Nine.Server.stats srv in
        check_bool "walks happened" true (List.mem_assoc "walk" stats);
        check_bool "writes happened" true (List.mem_assoc "write" stats));
    Alcotest.test_case "directories through the mount" `Quick (fun () ->
        let ns = Vfs.create () in
        let srv = Nine.serve_mount ns "/mnt/nine" (Vfs.ramfs ns) in
        ignore srv;
        Vfs.mkdir_p ns "/mnt/nine/d";
        Vfs.write_file ns "/mnt/nine/d/a" "1";
        Vfs.write_file ns "/mnt/nine/d/b" "2";
        let names =
          List.map (fun (s : Vfs.stat) -> s.st_name) (Vfs.readdir ns "/mnt/nine/d")
        in
        Alcotest.(check (list string)) "names" [ "a"; "b" ] names);
    Alcotest.test_case "errors cross the protocol as Rerror" `Quick (fun () ->
        let ns = Vfs.create () in
        ignore (Nine.serve_mount ns "/mnt/nine" (Vfs.ramfs ns));
        check_bool "Enonexist survives the wire" true
          (match Vfs.read_file ns "/mnt/nine/missing" with
          | exception Vfs.Error Vfs.Enonexist -> true
          | _ -> false));
    Alcotest.test_case "large file crosses iounit chunking" `Quick (fun () ->
        let ns = Vfs.create () in
        ignore (Nine.serve_mount ns "/mnt/nine" (Vfs.ramfs ns));
        let big = String.init 50_000 (fun i -> Char.chr (32 + (i mod 90))) in
        Vfs.write_file ns "/mnt/nine/big" big;
        check_bool "equal" true (Vfs.read_file ns "/mnt/nine/big" = big));
    Alcotest.test_case "remove through the mount" `Quick (fun () ->
        let ns = Vfs.create () in
        ignore (Nine.serve_mount ns "/mnt/nine" (Vfs.ramfs ns));
        Vfs.write_file ns "/mnt/nine/f" "x";
        Vfs.remove ns "/mnt/nine/f";
        check_bool "gone" false (Vfs.exists ns "/mnt/nine/f"));
    Alcotest.test_case "a persistently corrupted frame fails after retries"
      `Quick (fun () ->
        (* failure injection: flip a byte in every server reply; the
           client retries, then gives up with a transport error *)
        let ns = Vfs.create () in
        let srv = Nine.Server.create (Vfs.ramfs ns) in
        let corrupt packet =
          let reply = Bytes.of_string (Nine.Server.rpc srv packet) in
          if Bytes.length reply > 4 then
            Bytes.set reply 4
              (Char.chr (Char.code (Bytes.get reply 4) lxor 0x55));
          Bytes.to_string reply
        in
        check_bool "detected" true
          (match Nine.Client.connect corrupt with
          | exception Vfs.Error (Vfs.Eio _) -> true
          | _ -> false));
    Alcotest.test_case "a persistent tag mismatch fails after retries" `Quick
      (fun () ->
        let ns = Vfs.create () in
        let srv = Nine.Server.create (Vfs.ramfs ns) in
        let retag packet =
          (* answer with the wrong tag *)
          let reply = Bytes.of_string (Nine.Server.rpc srv packet) in
          Bytes.set reply 5 '\xee';
          Bytes.set reply 6 '\xbb';
          Bytes.to_string reply
        in
        check_bool "detected" true
          (match Nine.Client.connect retag with
          | exception Vfs.Error (Vfs.Eio _) -> true
          | _ -> false));
    Alcotest.test_case "a transient fault is retried transparently" `Quick
      (fun () ->
        (* drop exactly one read reply: the client times out, retries,
           and the caller never notices *)
        let ns = Vfs.create () in
        let srv = Nine.Server.create (Vfs.ramfs ns) in
        let dropped = ref false in
        let flaky packet =
          let reply = Nine.Server.rpc srv packet in
          match Nine.decode_t packet with
          | _, Nine.Tread _ when not !dropped ->
              dropped := true;
              raise Nine.Timeout
          | _ -> reply
        in
        let c = Nine.Client.connect flaky in
        let outer = Vfs.create () in
        Vfs.mount outer "/mnt/nine" (Nine.Client.filesystem c);
        Vfs.write_file outer "/mnt/nine/f" "survives";
        let before = Trace.find_value "nine.retry.read" in
        check_str "read through one drop" "survives"
          (Vfs.read_file outer "/mnt/nine/f");
        check_bool "dropped once" true !dropped;
        let after = Trace.find_value "nine.retry.read" in
        check_bool "retry counted" true
          (match (before, after) with
          | Some b, Some a -> a = b + 1
          | None, Some a -> a >= 1
          | _ -> false));
    Alcotest.test_case "stacked mounts: nine over nine" `Quick (fun () ->
        (* the CPU-server topology in miniature: a server exporting a
           namespace that itself resolves through another 9P mount *)
        let inner = Vfs.create () in
        ignore (Nine.serve_mount inner "/deep" (Vfs.ramfs inner));
        Vfs.write_file inner "/deep/f" "two hops";
        let outer = Vfs.create () in
        ignore (Nine.serve_mount outer "/link" (Vfs.subtree inner "/"));
        check_str "read through both" "two hops"
          (Vfs.read_file outer "/link/deep/f");
        Vfs.write_file outer "/link/deep/f" "written back";
        check_str "write through both" "written back"
          (Vfs.read_file inner "/deep/f"));
  ]

(* direct protocol conversations, message by message *)
let protocol_tests =
  [
    Alcotest.test_case "version resets the fid table" `Quick (fun () ->
        let ns = Vfs.create () in
        let fs = Vfs.ramfs ns in
        Vfs.mount ns "/m" fs;
        Vfs.write_file ns "/m/f" "x";
        let srv = Nine.Server.create fs in
        let rpc msg =
          let tag, r = Nine.decode_r (Nine.Server.rpc srv (Nine.encode_t ~tag:1 msg)) in
          check_int "tag" 1 tag;
          r
        in
        (match rpc (Nine.Tversion { msize = 8192; version = "9P2000.help" }) with
        | Nine.Rversion _ -> ()
        | _ -> Alcotest.fail "version");
        (match rpc (Nine.Tattach { fid = 0; uname = "u"; aname = "" }) with
        | Nine.Rattach _ -> ()
        | _ -> Alcotest.fail "attach");
        (* after a second Tversion the old fid is gone *)
        (match rpc (Nine.Tversion { msize = 8192; version = "9P2000.help" }) with
        | Nine.Rversion _ -> ()
        | _ -> Alcotest.fail "version2");
        match rpc (Nine.Tstat { fid = 0 }) with
        | Nine.Rerror _ -> ()
        | _ -> Alcotest.fail "stale fid accepted");
    Alcotest.test_case "walk stops at the missing component" `Quick (fun () ->
        let ns = Vfs.create () in
        let fs = Vfs.ramfs ns in
        Vfs.mount ns "/m" fs;
        Vfs.mkdir_p ns "/m/a";
        let srv = Nine.Server.create fs in
        let rpc msg =
          snd (Nine.decode_r (Nine.Server.rpc srv (Nine.encode_t ~tag:1 msg)))
        in
        ignore (rpc (Nine.Tversion { msize = 8192; version = "9P2000.help" }));
        ignore (rpc (Nine.Tattach { fid = 0; uname = "u"; aname = "" }));
        match rpc (Nine.Twalk { fid = 0; newfid = 1; names = [ "a"; "nope"; "deep" ] }) with
        | Nine.Rerror _ -> ()
        | Nine.Rwalk { qids } ->
            (* partial walks may also be reported with fewer qids *)
            check_bool "fewer qids than names" true (List.length qids < 3)
        | _ -> Alcotest.fail "unexpected reply");
    Alcotest.test_case "create over the wire" `Quick (fun () ->
        let ns = Vfs.create () in
        let backing = Vfs.ramfs ns in
        ignore (Nine.serve_mount ns "/m" backing);
        let h = Vfs.create_file ns "/m/new-file" in
        Vfs.write h "born remote";
        Vfs.close h;
        check_str "content" "born remote" (Vfs.read_file ns "/m/new-file"));
    Alcotest.test_case "qid carries the directory bit and version" `Quick
      (fun () ->
        let ns = Vfs.create () in
        let fs = Vfs.ramfs ns in
        Vfs.mount ns "/m" fs;
        Vfs.mkdir_p ns "/m/d";
        Vfs.write_file ns "/m/f" "x";
        let srv = Nine.Server.create fs in
        let rpc msg =
          snd (Nine.decode_r (Nine.Server.rpc srv (Nine.encode_t ~tag:1 msg)))
        in
        ignore (rpc (Nine.Tversion { msize = 8192; version = "9P2000.help" }));
        ignore (rpc (Nine.Tattach { fid = 0; uname = "u"; aname = "" }));
        (match rpc (Nine.Twalk { fid = 0; newfid = 1; names = [ "d" ] }) with
        | Nine.Rwalk { qids = [ q ] } ->
            check_bool "dir bit" true (q.Nine.q_type land Nine.qtdir <> 0)
        | _ -> Alcotest.fail "walk d");
        match rpc (Nine.Twalk { fid = 0; newfid = 2; names = [ "f" ] }) with
        | Nine.Rwalk { qids = [ q ] } ->
            check_bool "file has no dir bit" true (q.Nine.q_type land Nine.qtdir = 0)
        | _ -> Alcotest.fail "walk f");
  ]

let () =
  Alcotest.run "nine"
    [
      ("codec", codec_tests);
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_twrite; prop_twalk ]);
      ("end-to-end", e2e_tests);
      ("protocol", protocol_tests);
    ]
