(* The multi-connection serving layer: per-connection fid spaces,
   Tflush cancellation, round-robin fairness, and deterministic
   interleaving replay. *)

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let counter_value name = Option.value ~default:0 (Trace.find_value name)

(* raw message helpers: drive a pooled connection at the wire level *)

let tmsg ~tag m = Nine.encode_t ~tag m

let version ~tag = tmsg ~tag (Nine.Tversion { msize = 65536; version = "9P2000.help" })
let attach ~tag = tmsg ~tag (Nine.Tattach { fid = 0; uname = "test"; aname = "" })
let stat_root ~tag = tmsg ~tag (Nine.Tstat { fid = 0 })
let flush ~tag oldtag = tmsg ~tag (Nine.Tflush { oldtag })

let reply_of = function
  | Nine.Pool.Replied r -> snd (Nine.decode_r r)
  | Waiting -> Alcotest.fail "request still waiting"
  | Flushed -> Alcotest.fail "request unexpectedly flushed"

(* a pool over a ramfs with [n] raw attached connections *)
let raw_pool n =
  let ns = Vfs.create () in
  let pool = Nine.Pool.create (Vfs.ramfs ns) in
  let conns =
    List.init n (fun i ->
        Nine.Pool.attach ~uname:(Printf.sprintf "raw%d" i) pool)
  in
  (* negotiate + attach each seat, serving as we go *)
  List.iter
    (fun c ->
      ignore (Nine.Pool.transport c (version ~tag:1));
      ignore (Nine.Pool.transport c (attach ~tag:2)))
    conns;
  (ns, pool, conns)

(* ------------------------------------------------------------------ *)
(* Codec + queue cancellation                                          *)

let flush_tests =
  [
    Alcotest.test_case "Tflush / Rflush round-trip the codec" `Quick (fun () ->
        (match Nine.decode_t (Nine.encode_t ~tag:3 (Nine.Tflush { oldtag = 77 })) with
        | 3, Nine.Tflush { oldtag } -> check_int "oldtag" 77 oldtag
        | _ -> Alcotest.fail "wrong message");
        match Nine.decode_r (Nine.encode_r ~tag:3 Nine.Rflush) with
        | 3, Nine.Rflush -> ()
        | _ -> Alcotest.fail "wrong message");
    Alcotest.test_case "flushing a queued request cancels it" `Quick (fun () ->
        let _ns, pool, conns = raw_pool 1 in
        let c = List.hd conns in
        let cancelled0 = counter_value "nine.flush.cancelled" in
        (* queue a walk, then flush it before the scheduler runs *)
        let victim =
          Nine.Pool.submit c
            (tmsg ~tag:5 (Nine.Twalk { fid = 0; newfid = 1; names = [] }))
        in
        let fl = Nine.Pool.submit c (flush ~tag:6 5) in
        Nine.Pool.run pool;
        check_bool "victim flushed" true
          (Nine.Pool.take c victim = Nine.Pool.Flushed);
        (match reply_of (Nine.Pool.take c fl) with
        | Nine.Rflush -> ()
        | _ -> Alcotest.fail "expected Rflush");
        check_int "cancelled counted" (cancelled0 + 1)
          (counter_value "nine.flush.cancelled");
        (* the cancelled walk never ran: no fid beyond the root *)
        check_int "no fid bound" 1 (Nine.Pool.fid_count pool));
    Alcotest.test_case "flushing a completed request is stale" `Quick (fun () ->
        let _ns, _pool, conns = raw_pool 1 in
        let c = List.hd conns in
        let stale0 = counter_value "nine.flush.stale" in
        (* the stat is served synchronously; flushing its tag afterwards
           finds nothing to cancel *)
        ignore (Nine.Pool.transport c (stat_root ~tag:9));
        (match snd (Nine.decode_r (Nine.Pool.transport c (flush ~tag:10 9))) with
        | Nine.Rflush -> ()
        | _ -> Alcotest.fail "expected Rflush");
        check_int "stale counted" (stale0 + 1) (counter_value "nine.flush.stale"));
  ]

(* ------------------------------------------------------------------ *)
(* Fid isolation                                                       *)

let isolation_tests =
  [
    Alcotest.test_case "a connection cannot clunk another's fid" `Quick
      (fun () ->
        let _ns, pool, conns = raw_pool 2 in
        let a, b = (List.nth conns 0, List.nth conns 1) in
        (* A binds fid 7 *)
        (match
           snd
             (Nine.decode_r
                (Nine.Pool.transport a
                   (tmsg ~tag:3
                      (Nine.Twalk { fid = 0; newfid = 7; names = [] }))))
         with
        | Nine.Rwalk _ -> ()
        | _ -> Alcotest.fail "walk failed");
        (* B clunking 7 draws unknown fid; A's table is untouched *)
        (match
           snd
             (Nine.decode_r
                (Nine.Pool.transport b (tmsg ~tag:4 (Nine.Tclunk { fid = 7 }))))
         with
        | Nine.Rerror { ename } ->
            check_bool "unknown fid" true
              (Hstr.find ename ~sub:"unknown fid" <> None)
        | _ -> Alcotest.fail "expected Rerror");
        ignore b;
        check_int "A keeps root + 7" 2
          (Nine.Server.conn_fid_count
             (List.nth (Nine.Server.connections (Nine.Pool.server pool)) 0));
        ignore (Nine.Pool.served a));
  ]

(* property: whatever fids B clunks or walks, A's fid table is unchanged *)
let isolation_property =
  QCheck.Test.make ~name:"B's clunks and walks never touch A's fids"
    ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20)
       (QCheck.make QCheck.Gen.(int_range 0 50)))
    (fun fids ->
      let _ns, pool, conns = raw_pool 2 in
      let a, b = (List.nth conns 0, List.nth conns 1) in
      (* A binds fids 1..5 *)
      List.iter
        (fun newfid ->
          ignore
            (Nine.Pool.transport a
               (tmsg ~tag:(10 + newfid)
                  (Nine.Twalk { fid = 0; newfid; names = [] }))))
        [ 1; 2; 3; 4; 5 ];
      let sconn_a = List.nth (Nine.Server.connections (Nine.Pool.server pool)) 0 in
      let before = Nine.Server.conn_fid_count sconn_a in
      List.iteri
        (fun i fid ->
          ignore
            (Nine.Pool.transport b (tmsg ~tag:(100 + i) (Nine.Tclunk { fid })));
          ignore
            (Nine.Pool.transport b
               (tmsg ~tag:(200 + i)
                  (Nine.Twalk { fid; newfid = fid + 1; names = [] }))))
        fids;
      Nine.Server.conn_fid_count sconn_a = before)

(* ------------------------------------------------------------------ *)
(* Fairness and determinism                                            *)

let script_runs seed =
  (* three faulted clients over one pool; returns (journal, per-conn
     transcripts, final file contents) *)
  Trace.reset ();
  let ns = Vfs.create () in
  let pool = Nine.Pool.create (Vfs.ramfs ns) in
  Nine.Pool.record_journal pool true;
  let config = { Fault.default with seed; rate = 0.1 } in
  let mk i =
    let conn = Nine.Pool.attach ~uname:(Printf.sprintf "client%d" i) pool in
    let transport = Fault.wrap config (Nine.Pool.transport conn) in
    (conn, Nine.Client.connect ~max_retries:8 ~uname:(Printf.sprintf "client%d" i) transport)
  in
  let clients = List.init 3 mk in
  let scratch = Vfs.create () in
  List.iteri
    (fun i (_, cl) ->
      Vfs.mount scratch (Printf.sprintf "/c%d" i) (Nine.Client.filesystem cl))
    clients;
  (* interleaved scripts: each client writes then reads its own file *)
  let transcripts =
    List.mapi
      (fun i (_, _) ->
        let path = Printf.sprintf "/c%d/f%d" i i in
        Vfs.write_file scratch path (Printf.sprintf "hello from %d" i);
        Vfs.read_file scratch path)
      clients
  in
  let journal = Nine.Pool.journal pool in
  (journal, transcripts, Nine.Pool.stats pool)

let fairness_tests =
  [
    Alcotest.test_case "round-robin serves equal scripts equally" `Quick
      (fun () ->
        let _ns, pool, conns = raw_pool 4 in
        List.iter
          (fun c ->
            for tag = 20 to 29 do
              ignore (Nine.Pool.submit c (stat_root ~tag))
            done)
          conns;
        Nine.Pool.run pool;
        let spread = Nine.Pool.fairness_spread pool in
        check_bool "spread is 1.0" true (spread = 1.0));
    Alcotest.test_case "a chatty client cannot starve the rest" `Quick
      (fun () ->
        let _ns, pool, conns = raw_pool 2 in
        let chatty, quiet = (List.nth conns 0, List.nth conns 1) in
        for tag = 20 to 119 do
          ignore (Nine.Pool.submit chatty (stat_root ~tag))
        done;
        let tq = Nine.Pool.submit quiet (stat_root ~tag:20) in
        (* two steps serve one from each ring seat; the quiet client's
           lone request does not wait behind 100 chatty ones *)
        ignore (Nine.Pool.step pool);
        ignore (Nine.Pool.step pool);
        check_bool "quiet served within one ring turn" true
          (match Nine.Pool.take quiet tq with
          | Nine.Pool.Replied _ -> true
          | _ -> false);
        Nine.Pool.run pool);
    Alcotest.test_case "same seed, byte-identical transcripts and journal"
      `Quick (fun () ->
        let j1, t1, s1 = script_runs 42 in
        let j2, t2, s2 = script_runs 42 in
        Trace.reset ();
        check_bool "journals identical" true (j1 = j2);
        check_bool "transcripts identical" true (t1 = t2);
        check_bool "per-conn stats identical" true (s1 = s2);
        check_bool "journal non-empty" true (j1 <> []));
    Alcotest.test_case "disconnect releases a connection's fids" `Quick
      (fun () ->
        let _ns, pool, conns = raw_pool 3 in
        check_int "one root fid per seat" 3 (Nine.Pool.fid_count pool);
        Nine.Pool.disconnect (List.nth conns 1);
        check_int "two seats left" 2 (Nine.Pool.fid_count pool);
        check_int "server agrees" 2
          (List.length (Nine.Server.connections (Nine.Pool.server pool))));
  ]

(* ------------------------------------------------------------------ *)
(* Client flush-on-timeout                                             *)

let client_tests =
  [
    Alcotest.test_case "a timed-out request sends Tflush before retrying"
      `Quick (fun () ->
        Trace.reset ();
        let ns = Vfs.create () in
        let pool = Nine.Pool.create (Vfs.ramfs ns) in
        let conn = Nine.Pool.attach ~uname:"timeouty" pool in
        let drop_next = ref false in
        let transport packet =
          (* drop exactly one read reply: the request is swallowed
             before submission, so the later flush finds nothing *)
          let _, m = Nine.decode_t packet in
          match m with
          | Nine.Tread _ when !drop_next ->
              drop_next := false;
              raise Nine.Timeout
          | _ -> Nine.Pool.transport conn packet
        in
        let client = Nine.Client.connect ~max_retries:4 transport in
        ignore ns;
        let scratch = Vfs.create () in
        Vfs.mount scratch "/m" (Nine.Client.filesystem client);
        Vfs.write_file scratch "/m/f" "payload";
        drop_next := true;
        check_str "retry recovers the read" "payload"
          (Vfs.read_file scratch "/m/f");
        check_bool "flush was sent" true (counter_value "nine.flush.sent" >= 1);
        check_bool "flush acknowledged by server" true
          (counter_value "nine.flush.received" >= 1);
        Trace.reset ());
  ]

(* ------------------------------------------------------------------ *)
(* Through a whole session                                             *)

let session_tests =
  [
    Alcotest.test_case "attach_client: a second program drives help" `Quick
      (fun () ->
        let s = Session.boot () in
        let baseline = Nine.Server.fid_count s.srv in
        let conn, fs = Session.attach_client ~uname:"probe" s in
        let scratch = Vfs.create () in
        Vfs.mount scratch "/h" fs;
        (* the client creates a window through its own connection... *)
        let id = String.trim (Vfs.read_file scratch "/h/new/ctl") in
        Vfs.write_file scratch ("/h/" ^ id ^ "/bodyapp") "from the probe\n";
        (* ...and the session sees it *)
        check_bool "window visible to session" true
          (Help.window_by_id s.help (int_of_string id) <> None);
        check_bool "text visible to session" true
          (let w = Option.get (Help.window_by_id s.help (int_of_string id)) in
           Hstr.find (Htext.string (Hwin.body w)) ~sub:"from the probe"
           <> None);
        (* stats carry the uname *)
        check_bool "uname recorded" true
          (List.exists
             (fun (_, u, _, _) -> u = "probe")
             (Nine.Pool.stats s.pool));
        (* no cross-connection fid leaks once the probe leaves *)
        Nine.Pool.disconnect conn;
        check_int "fids back to baseline" baseline
          (Nine.Server.fid_count s.srv));
  ]

(* ------------------------------------------------------------------ *)
(* The cooperative scheduler: bounded queues, backpressure, batching   *)

(* A hostile client floods [k] requests through a deliberately tiny
   ring (max_queue 16, batch_limit 4).  Three invariants, whatever [k]:
   the hostile queue never exceeds its bound (submission blocks and
   turns the scheduler instead), a polite client's lone request is
   still served within one ring turn, and every flooded request
   eventually settles — backpressure throttles, it does not drop. *)
let backpressure_property =
  QCheck.Test.make ~count:30
    ~name:"a flooding client is bounded and cannot starve others"
    (QCheck.make QCheck.Gen.(int_range 0 200))
    (fun k ->
      let ns = Vfs.create () in
      let pool = Nine.Pool.create ~max_queue:16 ~batch_limit:4 (Vfs.ramfs ns) in
      let hostile = Nine.Pool.attach ~uname:"hostile" pool in
      let polite = Nine.Pool.attach ~uname:"polite" pool in
      List.iter
        (fun c ->
          ignore (Nine.Pool.transport c (version ~tag:1));
          ignore (Nine.Pool.transport c (attach ~tag:2)))
        [ hostile; polite ];
      let stalls0 = counter_value "nine.backpressure.stalls" in
      let bound = ref true in
      let tickets =
        List.init k (fun i ->
            let t = Nine.Pool.submit hostile (stat_root ~tag:(20 + i)) in
            if Nine.Pool.queue_length hostile > 16 then bound := false;
            t)
      in
      let tq = Nine.Pool.submit polite (stat_root ~tag:20) in
      ignore (Nine.Pool.step pool);
      ignore (Nine.Pool.step pool);
      let polite_served =
        match Nine.Pool.take polite tq with
        | Nine.Pool.Replied _ -> true
        | _ -> false
      in
      Nine.Pool.run pool;
      let all_settled =
        List.for_all
          (fun t ->
            match Nine.Pool.poll hostile t with
            | Nine.Pool.Replied _ -> true
            | _ -> false)
          tickets
      in
      ignore ns;
      !bound && polite_served && all_settled
      && (k <= 16 || counter_value "nine.backpressure.stalls" > stalls0))

(* one deterministic mixed-batch run: two clients feed coalesced wire
   buffers whose sizes are derived from [seed]; returns everything a
   replay must reproduce *)
let batch_run seed =
  Trace.reset ();
  let ns = Vfs.create () in
  let pool = Nine.Pool.create (Vfs.ramfs ns) in
  Nine.Pool.record_journal pool true;
  let a = Nine.Pool.attach ~uname:"a" pool in
  let b = Nine.Pool.attach ~uname:"b" pool in
  List.iter
    (fun c ->
      ignore (Nine.Pool.transport c (version ~tag:1));
      ignore (Nine.Pool.transport c (attach ~tag:2)))
    [ a; b ];
  let batch lo n =
    String.concat "" (List.init n (fun i -> stat_root ~tag:(lo + i)))
  in
  (* a tiny LCG turns the seed into batch sizes, so different seeds
     exercise different coalescing boundaries *)
  let state = ref seed in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    1 + (!state mod 7)
  in
  let tickets = ref [] in
  let tag = ref 20 in
  for _ = 1 to 6 do
    let na = next () and nb = next () in
    tickets := !tickets @ List.map (fun t -> (a, t)) (Nine.Pool.feed a (batch !tag na));
    tag := !tag + na;
    tickets := !tickets @ List.map (fun t -> (b, t)) (Nine.Pool.feed b (batch !tag nb));
    tag := !tag + nb
  done;
  Nine.Pool.run pool;
  let replies =
    List.map
      (fun (c, t) ->
        match Nine.Pool.take c t with
        | Nine.Pool.Replied r -> r
        | _ -> "")
      !tickets
  in
  ignore ns;
  ( Nine.Pool.journal pool,
    Trace.histogram_stats (Trace.histogram "nine.batch.size"),
    replies )

let scheduler_tests =
  [
    Alcotest.test_case
      "same seed, same batch boundaries, same journal and replies" `Quick
      (fun () ->
        let j1, h1, r1 = batch_run 0xbeef in
        let j2, h2, r2 = batch_run 0xbeef in
        let j3, _, _ = batch_run 0xfeed in
        Trace.reset ();
        check_bool "journals identical" true (j1 = j2);
        check_bool "batch histograms identical" true (h1 = h2);
        check_bool "replies identical" true (r1 = r2);
        check_bool "journal non-empty" true (j1 <> []);
        check_bool "a different seed batches differently" true (j1 <> j3));
    Alcotest.test_case "nine.conn.active returns to baseline after churn"
      `Quick (fun () ->
        let s = Session.boot () in
        let active0 = counter_value "nine.conn.active" in
        let fid0 = Nine.Server.fid_count s.srv in
        let clients =
          List.init 5 (fun i ->
              fst (Session.attach_client ~uname:(Printf.sprintf "churn%d" i) s))
        in
        check_int "gauge counts the new seats" (active0 + 5)
          (counter_value "nine.conn.active");
        List.iter Nine.Pool.disconnect clients;
        (* disconnect is idempotent: doubling up must not drive the
           gauge or the fid ledger negative *)
        Nine.Pool.disconnect (List.hd clients);
        check_int "gauge back to baseline" active0
          (counter_value "nine.conn.active");
        check_int "fids back to baseline" fid0 (Nine.Server.fid_count s.srv));
  ]

let () =
  Alcotest.run "pool"
    [
      ("flush", flush_tests);
      ( "isolation",
        isolation_tests @ [ QCheck_alcotest.to_alcotest isolation_property ] );
      ("fairness", fairness_tests);
      ( "scheduler",
        scheduler_tests @ [ QCheck_alcotest.to_alcotest backpressure_property ]
      );
      ("client", client_tests);
      ("session", session_tests);
    ]
