(* Regexp: unit tests of the dialect plus a qcheck comparison against a
   reference backtracking matcher over randomly generated small
   patterns. *)

let check_bool = Alcotest.(check bool)

let matches pat s = Regexp.matches (Regexp.compile pat) s

let search pat s = Regexp.search (Regexp.compile pat) s 0

let unit_tests =
  [
    Alcotest.test_case "literal" `Quick (fun () ->
        check_bool "hit" true (matches "abc" "xxabcxx");
        check_bool "miss" false (matches "abc" "ab c"));
    Alcotest.test_case "dot" `Quick (fun () ->
        check_bool "any" true (matches "a.c" "abc");
        check_bool "not newline-restricted" true (matches "a.c" "a\nc"));
    Alcotest.test_case "star" `Quick (fun () ->
        check_bool "zero" true (matches "ab*c" "ac");
        check_bool "many" true (matches "ab*c" "abbbbc"));
    Alcotest.test_case "plus" `Quick (fun () ->
        check_bool "zero fails" false (matches "^ab+c$" "ac");
        check_bool "one" true (matches "ab+c" "abc"));
    Alcotest.test_case "opt" `Quick (fun () ->
        check_bool "with" true (matches "^ab?c$" "abc");
        check_bool "without" true (matches "^ab?c$" "ac"));
    Alcotest.test_case "alternation" `Quick (fun () ->
        check_bool "left" true (matches "^(cat|dog)$" "cat");
        check_bool "right" true (matches "^(cat|dog)$" "dog");
        check_bool "neither" false (matches "^(cat|dog)$" "cow"));
    Alcotest.test_case "classes" `Quick (fun () ->
        check_bool "range" true (matches "^[a-z]+$" "abc");
        check_bool "negated" true (matches "^[^0-9]+$" "abc");
        check_bool "negated miss" false (matches "^[^0-9]+$" "ab1");
        check_bool "multi-range" true (matches "^[a-zA-Z_][a-zA-Z0-9_]*$" "Xdie2"));
    Alcotest.test_case "anchors" `Quick (fun () ->
        check_bool "bol" true (matches "^abc" "abcdef");
        check_bool "bol miss" false (matches "^bcd" "abcdef");
        check_bool "eol" true (matches "def$" "abcdef");
        check_bool "line-internal anchors" true (matches "^second$" "first\nsecond\nthird"));
    Alcotest.test_case "escapes" `Quick (fun () ->
        check_bool "dot" true (matches "a\\.c" "a.c");
        check_bool "dot literal" false (matches "a\\.c" "abc");
        check_bool "star" true (matches "a\\*" "a*");
        check_bool "tab" true (matches "a\\tb" "a\tb"));
    Alcotest.test_case "leftmost-longest search" `Quick (fun () ->
        Alcotest.(check (option (pair int int)))
          "leftmost" (Some (2, 5)) (search "ab+" "xxabbyabbb");
        Alcotest.(check (option (pair int int)))
          "longest at position" (Some (0, 4)) (search "a*" "aaaab"));
    Alcotest.test_case "search_all non-overlapping" `Quick (fun () ->
        let re = Regexp.compile "ab" in
        Alcotest.(check int) "three" 3 (List.length (Regexp.search_all re "ababxab")));
    Alcotest.test_case "empty-match progress" `Quick (fun () ->
        (* a pattern matching empty must not loop forever *)
        let re = Regexp.compile "x*" in
        check_bool "terminates" true (List.length (Regexp.search_all re "aaa") > 0));
    Alcotest.test_case "parse errors" `Quick (fun () ->
        let bad p =
          match Regexp.compile p with
          | exception Regexp.Parse_error _ -> true
          | _ -> false
        in
        check_bool "unmatched paren" true (bad "(ab");
        check_bool "stray close" true (bad "ab)");
        check_bool "leading star" true (bad "*ab");
        check_bool "unterminated class" true (bad "[ab");
        check_bool "trailing backslash" true (bad "ab\\"));
    Alcotest.test_case "paper patterns" `Quick (fun () ->
        (* the grep of the worked example *)
        check_bool "main" true (matches "main" "void\nmain(int argc, char *argv[])");
        check_bool "file:line shape" true
          (matches "^[a-z./]+\\.c:[0-9]+$" "exec.c:213"));
  ]

(* Reference matcher: naive backtracking over the same AST. *)
let rec ref_match_here ast s i k =
  match ast with
  | Regexp.Empty -> k i
  | Regexp.Char c -> i < String.length s && s.[i] = c && k (i + 1)
  | Regexp.Any -> i < String.length s && k (i + 1)
  | Regexp.Class (neg, ranges) ->
      i < String.length s
      && (let inside = List.exists (fun (lo, hi) -> s.[i] >= lo && s.[i] <= hi) ranges in
          if neg then not inside else inside)
      && k (i + 1)
  | Regexp.Seq (a, b) -> ref_match_here a s i (fun j -> ref_match_here b s j k)
  | Regexp.Alt (a, b) -> ref_match_here a s i k || ref_match_here b s i k
  | Regexp.Opt a -> ref_match_here a s i k || k i
  | Regexp.Star a ->
      let rec star i depth =
        k i
        || (depth < 50
           && ref_match_here a s i (fun j -> j > i && star j (depth + 1)))
      in
      star i 0
  | Regexp.Plus a -> ref_match_here a s i (fun j -> ref_match_here (Regexp.Star a) s j k)
  | Regexp.Bol -> (i = 0 || s.[i - 1] = '\n') && k i
  | Regexp.Eol -> (i = String.length s || s.[i] = '\n') && k i

let ref_matches pat s =
  let ast = Regexp.parse pat in
  let n = String.length s in
  let rec try_at i =
    i <= n && (ref_match_here ast s i (fun _ -> true) || try_at (i + 1))
  in
  try_at 0

(* Leftmost-longest reference search: first position with any match
   (the old engine's restart loop), longest end there (enumerated by
   making the continuation refuse, which forces full backtracking). *)
let ref_search pat s pos =
  let ast = Regexp.parse pat in
  let n = String.length s in
  let rec try_at i =
    if i > n then None
    else begin
      let best = ref (-1) in
      ignore
        (ref_match_here ast s i (fun j ->
             if j > !best then best := j;
             false));
      if !best >= 0 then Some (i, !best) else try_at (i + 1)
    end
  in
  try_at (max 0 pos)

(* small random patterns built from a safe grammar *)
let pattern_gen =
  let open QCheck.Gen in
  let atom =
    oneof
      [ map (String.make 1) (map Char.chr (int_range 97 100));
        return "."; return "[ab]"; return "[^a]"; return "a"; return "b" ]
  in
  let rep a = oneof [ return a; map (fun a -> a ^ "*") (return a);
                      map (fun a -> a ^ "?") (return a);
                      map (fun a -> a ^ "+") (return a) ] in
  let seq = list_size (int_range 1 4) (atom >>= rep) >|= String.concat "" in
  oneof [ seq; map2 (fun a b -> "(" ^ a ^ "|" ^ b ^ ")") seq seq ]

let input_gen = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 97 100)) (int_range 0 12))

let prop_vs_reference =
  QCheck.Test.make ~name:"NFA agrees with backtracking reference" ~count:1000
    (QCheck.make ~print:(fun (p, s) -> Printf.sprintf "pat=%S input=%S" p s)
       (QCheck.Gen.pair pattern_gen input_gen))
    (fun (pat, s) ->
      match Regexp.compile pat with
      | exception Regexp.Parse_error _ -> QCheck.assume_fail ()
      | re -> Regexp.matches re s = ref_matches pat s)

let prop_search_bounds =
  QCheck.Test.make ~name:"search returns in-bounds leftmost ranges" ~count:500
    (QCheck.make ~print:(fun (p, s) -> Printf.sprintf "pat=%S input=%S" p s)
       (QCheck.Gen.pair pattern_gen input_gen))
    (fun (pat, s) ->
      match Regexp.compile pat with
      | exception Regexp.Parse_error _ -> QCheck.assume_fail ()
      | re -> (
          match Regexp.search re s 0 with
          | None -> true
          | Some (a, b) -> 0 <= a && a <= b && b <= String.length s))

(* Wider generators for the cross-engine properties: optional anchors
   and newline-bearing haystacks, so ^/$ and the DFA's bol/eol handling
   are exercised. *)
let pattern_gen2 =
  QCheck.Gen.map3
    (fun bol core eol ->
      (if bol then "^" else "") ^ core ^ if eol then "$" else "")
    QCheck.Gen.bool pattern_gen QCheck.Gen.bool

let input_gen2 =
  QCheck.Gen.(
    string_size
      ~gen:(frequency [ (5, map Char.chr (int_range 97 100)); (1, return '\n') ])
      (int_range 0 14))

let cross_arb =
  QCheck.make
    ~print:(fun (p, s) -> Printf.sprintf "pat=%S input=%S" p s)
    (QCheck.Gen.pair pattern_gen2 input_gen2)

let show_r = function None -> "None" | Some (a, b) -> Printf.sprintf "(%d,%d)" a b

(* The acceptance property: the full pipeline (prefilter + DFA +
   sweep), the plain NFA sweep, the rope-streaming path, and a
   byte-at-a-time Stream all return the reference matcher's exact
   (start, stop). *)
let prop_engines_agree =
  QCheck.Test.make ~name:"pipeline, NFA sweep, streaming = reference spans"
    ~count:1000 cross_arb (fun (pat, s) ->
      match Regexp.compile_uncached pat with
      | exception Regexp.Parse_error _ -> QCheck.assume_fail ()
      | re ->
          let expected = ref_search pat s 0 in
          let full = Regexp.search re s 0 in
          let nfa = Regexp.search_nfa re s 0 in
          let rope = Hsearch.search_rope re (Rope.of_string s) 0 in
          let stream =
            let cu = Regexp.Stream.create re in
            for i = 0 to String.length s - 1 do
              Regexp.Stream.feed cu s ~pos:i ~len:1
            done;
            Regexp.Stream.finish cu
          in
          if full = expected && nfa = expected && rope = expected
             && stream = expected
          then true
          else
            QCheck.Test.fail_reportf
              "expected %s: search=%s search_nfa=%s rope=%s stream=%s"
              (show_r expected) (show_r full) (show_r nfa) (show_r rope)
              (show_r stream))

let prop_matches_agree =
  QCheck.Test.make ~name:"matches/Scan agree with reference existence"
    ~count:1000 cross_arb (fun (pat, s) ->
      match Regexp.compile_uncached pat with
      | exception Regexp.Parse_error _ -> QCheck.assume_fail ()
      | re ->
          let expected = ref_matches pat s in
          let scan =
            let sc = Regexp.Scan.create re in
            let hit = ref false in
            for i = 0 to String.length s - 1 do
              if Regexp.Scan.feed sc s ~pos:i ~len:1 then hit := true
            done;
            !hit || Regexp.Scan.finish sc
          in
          Regexp.matches re s = expected && scan = expected)

(* Same agreement with the DFA cache squeezed to its floor, so flushes
   happen constantly mid-scan. *)
let prop_tiny_dfa_cache =
  QCheck.Test.make ~name:"results survive constant DFA cache flushes"
    ~count:300 cross_arb (fun (pat, s) ->
      match Regexp.compile_uncached pat with
      | exception Regexp.Parse_error _ -> QCheck.assume_fail ()
      | re ->
          Regexp.set_dfa_capacity 8;
          let r =
            Regexp.search re s 0 = ref_search pat s 0
            && Regexp.matches re s = ref_matches pat s
          in
          Regexp.set_dfa_capacity 256;
          r)

let prop_search_pos =
  QCheck.Test.make ~name:"search at nonzero pos agrees with reference"
    ~count:500
    (QCheck.make
       ~print:(fun ((p, s), pos) -> Printf.sprintf "pat=%S input=%S pos=%d" p s pos)
       (QCheck.Gen.pair (QCheck.Gen.pair pattern_gen2 input_gen2)
          (QCheck.Gen.int_range 0 15)))
    (fun ((pat, s), pos) ->
      match Regexp.compile_uncached pat with
      | exception Regexp.Parse_error _ -> QCheck.assume_fail ()
      | re ->
          QCheck.assume (pos <= String.length s);
          Regexp.search re s pos = ref_search pat s pos
          && Hsearch.search_rope re (Rope.of_string s) pos = ref_search pat s pos)

(* ------------------------------------------------------------------ *)
(* Streaming / rope regressions with real chunk boundaries.  A string
   longer than the rope's max leaf (512) built via [Rope.of_string]
   splits at predictable offsets (1200 bytes -> leaves at 300, 600,
   900), so needles planted around 600 straddle a boundary.            *)

let big_rope_tests =
  let mk fill = String.make 1200 fill in
  [
    Alcotest.test_case "literal straddling a leaf boundary" `Quick (fun () ->
        let s = Bytes.of_string (mk 'x') in
        Bytes.blit_string "needle" 0 s 597 6;
        let s = Bytes.to_string s in
        let rope = Rope.of_string s in
        Alcotest.(check (option (pair int int)))
          "found across chunks" (Some (597, 603))
          (Hsearch.find_rope (Hsearch.Literal "needle") rope);
        Alcotest.(check (option (pair int int)))
          "pattern too" (Some (597, 603))
          (Hsearch.search_rope (Regexp.compile_uncached "needle") rope 0));
    Alcotest.test_case "match straddling a leaf boundary" `Quick (fun () ->
        let s = Bytes.of_string (mk 'x') in
        Bytes.blit_string "aabbb" 0 s 598 5;
        let s = Bytes.to_string s in
        let re = Regexp.compile_uncached "aab+" in
        let rope = Rope.of_string s in
        Alcotest.(check (option (pair int int)))
          "rope = string" (Regexp.search re s 0)
          (Hsearch.search_rope re rope 0);
        Alcotest.(check (option (pair int int)))
          "expected span" (Some (598, 603))
          (Hsearch.search_rope re rope 0));
    Alcotest.test_case "zero-width search_all over the rope" `Quick (fun () ->
        (* terminates and agrees with the string path, boundaries
           included *)
        let s = mk 'a' in
        let re = Regexp.compile_uncached "a*" in
        let rope = Rope.of_string s in
        let via_string = Regexp.search_all re s in
        let via_rope = Hsearch.search_all_rope re rope in
        Alcotest.(check (list (pair int int))) "agree" via_string via_rope;
        let s2 = "ab" ^ mk 'b' in
        let rope2 = Rope.of_string s2 in
        let re2 = Regexp.compile_uncached "a*" in
        Alcotest.(check (list (pair int int)))
          "zero-width at boundaries" (Regexp.search_all re2 s2)
          (Hsearch.search_all_rope re2 rope2));
    Alcotest.test_case "anchors across chunked lines" `Quick (fun () ->
        let line = String.make 299 'y' ^ "\n" in
        let s = line ^ line ^ "target\n" ^ line in
        let re = Regexp.compile_uncached "^target$" in
        let rope = Rope.of_string s in
        Alcotest.(check (option (pair int int)))
          "rope = string" (Regexp.search re s 0)
          (Hsearch.search_rope re rope 0));
  ]

let dfa_tests =
  [
    Alcotest.test_case "bounded cache flushes and stays bounded" `Quick
      (fun () ->
        Regexp.set_dfa_capacity 8;
        (* tracking four trailing [ab] positions needs more than 8
           deterministic states, and the absent 'c' makes the DFA scan
           the whole haystack *)
        let re = Regexp.compile_uncached "a[ab][ab][ab][ab]c" in
        let hay = String.concat "" (List.init 40 (fun i ->
            if i mod 3 = 0 then "ab" else "ba")) in
        check_bool "no match" true (Regexp.search re hay 0 = None);
        check_bool "flushed at least once" true (Regexp.dfa_flush_count re > 0);
        check_bool "bounded" true (Regexp.dfa_state_count re <= 9);
        let pat2 = "a[ab][ab][ab][ab]" in
        let re2 = Regexp.compile_uncached pat2 in
        Alcotest.(check (option (pair int int)))
          "still exact under the tiny cache" (ref_search pat2 hay 0)
          (Regexp.search re2 hay 0);
        Regexp.set_dfa_capacity 256);
    Alcotest.test_case "prefilter analyses" `Quick (fun () ->
        let pre p = Regexp.required_prefix (Regexp.compile_uncached p) in
        let lit p = Regexp.required_literal (Regexp.compile_uncached p) in
        Alcotest.(check string) "literal prefix" "abc" (pre "abc");
        Alcotest.(check string) "anchor is zero-width" "ab" (pre "^ab");
        Alcotest.(check string) "plus keeps one copy" "er" (pre "er+ s");
        Alcotest.(check string) "star cuts" "a" (pre "ab*c");
        Alcotest.(check string) "alt takes common prefix" "ab" (pre "(abc|abd)");
        Alcotest.(check string) "nullable has no prefix" "" (pre "x*");
        Alcotest.(check string) "inner literal beats prefix" "r s" (lit "er+ s");
        Alcotest.(check string) "literal run" "abc" (lit "x*abcy*"));
    Alcotest.test_case "stream across many chunks" `Quick (fun () ->
        let re = Regexp.compile_uncached "ab+c" in
        let s = "zzzabbbczz" in
        let cu = Regexp.Stream.create re in
        Regexp.Stream.feed cu s ~pos:0 ~len:4;
        Regexp.Stream.feed cu s ~pos:4 ~len:3;
        Regexp.Stream.feed cu s ~pos:7 ~len:3;
        Alcotest.(check (option (pair int int)))
          "chunked feed" (Some (3, 8)) (Regexp.Stream.finish cu);
        Alcotest.(check (option (pair int int)))
          "idempotent finish" (Some (3, 8)) (Regexp.Stream.finish cu));
  ]

let () =
  Alcotest.run "regexp"
    [
      ("unit", unit_tests);
      ("rope", big_rope_tests);
      ("dfa", dfa_tests);
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_vs_reference;
            prop_search_bounds;
            prop_engines_agree;
            prop_matches_agree;
            prop_tiny_dfa_cache;
            prop_search_pos;
          ] );
    ]
