(* The observability layer: registry semantics, deterministic span
   logs, ring truncation, exporter well-formedness, and the paper's
   own interface — reading the ledger back as /mnt/help/stats and
   /mnt/help/trace from an in-session shell. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec f i = i + n <= m && (String.sub hay i n = needle || f (i + 1)) in
  n = 0 || f 0

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry_basics () =
  Trace.reset ();
  let c = Trace.counter "test.ctr" in
  Trace.incr c;
  Trace.incr ~by:4 c;
  check_int "counter accumulates" 5 (Trace.value c);
  Trace.incr (Trace.counter "test.ctr");
  check_int "find-or-create returns the same cell" 6 (Trace.value c);
  check_bool "find_value sees it" true (Trace.find_value "test.ctr" = Some 6);
  check_bool "find_value misses politely" true
    (Trace.find_value "test.absent" = None);
  let g = Trace.gauge "test.g" in
  Trace.set_gauge g 7;
  check_int "gauge holds last value" 7 (Trace.gauge_value g);
  let h = Trace.histogram "test.h" in
  Trace.observe h 10;
  Trace.observe h 2;
  check_bool "histogram stats" true (Trace.histogram_stats h = (2, 12, 2, 10));
  check_bool "a name cannot change kind" true
    (match Trace.gauge "test.ctr" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let text = Trace.stats_text () in
  check_bool "stats_text has the counter" true (contains text "test.ctr 6");
  check_bool "stats_text expands histograms" true
    (contains text "test.h.count 2" && contains text "test.h.sum 12");
  Trace.reset ();
  check_int "reset zeroes but keeps the cell" 0 (Trace.value c)

(* ------------------------------------------------------------------ *)
(* Span ring *)

let ring_truncation () =
  Trace.reset ();
  let old = Trace.ring_capacity () in
  Trace.set_ring_capacity 8;
  for i = 1 to 20 do
    Trace.with_span "tick" (fun () -> ignore i)
  done;
  check_int "ring holds only the capacity" 8 (Trace.pending_spans ());
  let spans, dropped = Trace.drain () in
  check_int "newest spans survive" 8 (List.length spans);
  check_int "overflow is counted" 12 dropped;
  check_bool "cumulative dropped counter" true
    (Trace.find_value "trace.spans.dropped" = Some 12);
  check_int "drain empties the ring" 0 (Trace.pending_spans ());
  let text = Trace.spans_text ~dropped spans in
  check_bool "the text export marks the truncation" true
    (contains text "# 12 spans dropped");
  Trace.set_ring_capacity old

let json_well_formed () =
  Trace.reset ();
  Trace.with_span
    ~args:[ ("file", "a\"b\\c\n"); ("n", "3") ]
    "outer"
    (fun () -> Trace.with_span "inner" (fun () -> ()));
  let spans, _ = Trace.drain () in
  check_int "nested spans recorded" 2 (List.length spans);
  let json = Trace.spans_json spans in
  check_bool "chrome export is well-formed JSON" true (Jsonv.well_formed json);
  check_bool "it is a traceEvents object" true (contains json "\"traceEvents\"");
  check_bool "empty export is well-formed too" true
    (Jsonv.well_formed (Trace.spans_json []))

(* ------------------------------------------------------------------ *)
(* Determinism: the same scripted session yields the same span log. *)

let scripted_log () =
  let t = Session.boot () in
  let edit = Session.win t "/help/edit/stf" in
  Session.exec_word t edit "New";
  ignore (Rc.run t.Session.sh "echo traced");
  ignore (Session.screen t);
  let spans, dropped = Trace.drain () in
  Trace.spans_text ~dropped spans

let deterministic_sessions () =
  let a = scripted_log () in
  let b = scripted_log () in
  check_bool "the log is nonempty" true (String.length a > 0);
  check_str "identical sessions trace identically" a b

(* ------------------------------------------------------------------ *)
(* The figure-session replay exports a loadable Chrome trace. *)

let replay_export () =
  ignore (Demo.run ());
  let spans, _ = Trace.drain () in
  check_bool "the replay produced spans" true (spans <> []);
  check_bool "its chrome export is valid JSON" true
    (Jsonv.well_formed (Trace.spans_json spans))

(* ------------------------------------------------------------------ *)
(* The paper's interface: cat the ledger from the session's shell. *)

let metric_lines out =
  List.filter_map
    (fun line ->
      match String.index_opt line ' ' with
      | Some i -> (
          let k = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          match int_of_string_opt v with Some v -> Some (k, v) | None -> None)
      | None -> None)
    (String.split_on_char '\n' out)

let stats_over_the_mount () =
  let t = Session.boot () in
  ignore (Session.screen t);
  ignore (Session.screen t);
  (* one read through the mount first: the stats file snapshots at open,
     so the reads that fetch it are not yet in its own content *)
  ignore (Rc.run t.Session.sh "cat /mnt/help/index");
  let r = Rc.run t.Session.sh "cat /mnt/help/stats" in
  check_int "cat succeeds" 0 r.Rc.r_status;
  let m = metric_lines r.Rc.r_out in
  let nonzero key =
    check_bool (key ^ " is live") true
      (match List.assoc_opt key m with Some v -> v > 0 | None -> false)
  in
  List.iter nonzero
    [
      "help.draw.draws"; "help.draw.full"; "help.layout.hit";
      "help.layout.miss"; "nine.rpc.walk"; "nine.rpc.read"; "rc.runs";
      "vfs.walk"; "vfs.read";
    ]

let trace_over_the_mount () =
  let t = Session.boot () in
  ignore (Session.screen t);
  let r = Rc.run t.Session.sh "cat /mnt/help/trace" in
  check_int "cat succeeds" 0 r.Rc.r_status;
  check_bool "draw spans are in the log" true (contains r.Rc.r_out "help.draw");
  check_bool "exec spans are in the log" true (contains r.Rc.r_out "rc.run");
  (* reading drained the ring: a second cat sees only the spans the
     first cat itself produced (per-RPC spans and shell machinery), not
     the boot's — the draw span of [Session.screen] appears exactly
     once across the two reads *)
  let r2 = Rc.run t.Session.sh "cat /mnt/help/trace" in
  check_bool "the drain drained" false (contains r2.Rc.r_out "help.draw")

(* ------------------------------------------------------------------ *)
(* 9P per-message tallies (the aggregate ledger vs the per-link view). *)

let nine_tallies () =
  Trace.reset ();
  let ns = Vfs.create () in
  let srv = Nine.serve_mount ns "/mnt/nine" (Vfs.ramfs ns) in
  Vfs.write_file ns "/mnt/nine/f" "tally";
  check_str "read back" "tally" (Vfs.read_file ns "/mnt/nine/f");
  ignore (Vfs.readdir ns "/mnt/nine");
  let global k =
    Option.value ~default:0 (Trace.find_value ("nine.rpc." ^ k))
  in
  List.iter
    (fun k -> check_bool ("nine.rpc." ^ k ^ " tallied") true (global k > 0))
    [ "version"; "attach"; "walk"; "open"; "read"; "write"; "clunk" ];
  (* only one server has run since the reset, so the global ledger must
     equal its per-link view exactly *)
  let per_link = Nine.Server.stats srv in
  List.iter
    (fun (k, v) -> check_int ("ledger agrees on " ^ k) v (global k))
    per_link;
  let rpcs = List.fold_left (fun a (_, v) -> a + v) 0 per_link in
  let cnt, _, _, _ = Trace.histogram_stats (Trace.histogram "nine.rpc.us") in
  check_int "every rpc fed the latency histogram" rpcs cnt

(* ------------------------------------------------------------------ *)
(* Percentile edge cases *)

let percentile_edges () =
  Trace.reset ();
  let h = Trace.histogram "test.pct" in
  check_int "empty p0" 0 (Trace.percentile h 0.);
  check_int "empty p50" 0 (Trace.percentile h 50.);
  check_int "empty p100" 0 (Trace.percentile h 100.);
  Trace.observe h 7;
  check_int "single obs p0" 7 (Trace.percentile h 0.);
  check_int "single obs p50" 7 (Trace.percentile h 50.);
  check_int "single obs p100" 7 (Trace.percentile h 100.);
  Trace.observe h 1000;
  check_int "p0 is the lowest bucket" 7 (Trace.percentile h 0.);
  check_int "p100 is exact at the max" 1000 (Trace.percentile h 100.);
  check_int "out-of-range p clamps low" 7 (Trace.percentile h (-5.));
  check_int "out-of-range p clamps high" 1000 (Trace.percentile h 200.);
  let h2 = Trace.histogram "test.pct2" in
  Trace.observe h2 100;
  Trace.observe h2 101;
  let p = Trace.percentile h2 100. in
  check_bool "never understates, <=25% over" true (p >= 101 && p <= 126);
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Rolling windows: rotation, per-slot deltas, expiry on clock jumps *)

let window_rotation () =
  Trace.reset ();
  Trace.window_configure ~width:100 ~slots:4 ();
  let c = Trace.counter "test.win.c" in
  let h = Trace.histogram "test.win.h" in
  check_bool "no slot closed yet" true (Trace.window_series "test.win.c" = []);
  Trace.incr ~by:5 c;
  Trace.observe h 10;
  Trace.advance 120;
  check_bool "first slot closes on the boundary crossing" true
    (Trace.window_series "test.win.c" = [ (0, 5) ]);
  (match Trace.window_quantiles "test.win.h" with
  | [ (0, 1, p50, p95, p99) ] ->
      check_bool "slot quantiles within the bucket bound" true
        (p50 >= 10 && p50 <= 12 && p95 = p50 && p99 = p50)
  | _ -> Alcotest.fail "expected exactly one quantile slot");
  Trace.incr ~by:2 c;
  Trace.advance 100;
  check_bool "second slot carries only its own delta" true
    (Trace.window_series "test.win.c" = [ (0, 5); (1, 2) ]);
  (* a jump larger than the whole window expires every open slot *)
  Trace.advance 10_000;
  check_bool "all slots expired after the jump" true
    (Trace.window_series "test.win.c" = []);
  Trace.incr ~by:3 c;
  Trace.advance 100;
  (match Trace.window_series "test.win.c" with
  | [ (_, 3) ] -> ()
  | _ -> Alcotest.fail "the window restarts cleanly after the jump");
  (* rotation is also driven by plain clock readings *)
  let rolls0 =
    Option.value ~default:0 (Trace.find_value "trace.window.rolls")
  in
  for _ = 1 to 250 do
    ignore (Trace.now_us ())
  done;
  let rolls1 =
    Option.value ~default:0 (Trace.find_value "trace.window.rolls")
  in
  check_bool "now_us crossings roll the window" true (rolls1 > rolls0);
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Head sampling: deterministic, seed- and rate-sensitive *)

let sampler_determinism () =
  Trace.reset ();
  let verdicts seed rate =
    Trace.set_sampling ~seed ~rate ();
    List.init 1000 (fun i -> Trace.sample (i + 1))
  in
  let a = verdicts 3 16 in
  check_bool "same seed, same verdicts" true (verdicts 3 16 = a);
  let hits l = List.length (List.filter Fun.id l) in
  let n = hits a in
  check_bool "roughly one in sixteen" true (n > 20 && n < 140);
  check_bool "a different seed samples a different set" true
    (verdicts 4 16 <> a);
  Trace.set_sampling ~rate:0 ();
  check_bool "rate 0 drops everything" false (Trace.sample 5);
  Trace.set_sampling ~rate:1 ();
  check_bool "rate 1 keeps everything" true (Trace.sample 5);
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Reset clears the new observability state (windows, sampler, alerts) *)

let reset_clears_observability () =
  Trace.reset ();
  Trace.set_sampling ~seed:9 ~rate:64 ();
  Trace.window_configure ~width:128 ~slots:4 ();
  (match Trace.install_alert "t: value(test.ctr) > 0" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  ignore (Trace.request_id ());
  Trace.advance 1000;
  check_bool "state is set before the reset" true
    (Trace.sampling () = (9, 64) && Trace.alert_rules () <> []);
  Trace.reset ();
  check_bool "sampling back to defaults" true (Trace.sampling () = (0, 1));
  check_int "window width restored" 65536 (Trace.window_width ());
  check_int "window slots restored" 16 (Trace.window_slots ());
  check_bool "alert table cleared" true (Trace.alert_rules () = []);
  check_bool "window slots cleared" true
    (Trace.window_series "nine.rpc.read" = []);
  check_int "request ids restart" 1 (Trace.request_id ());
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Alert table: parsing, round-tripping, evaluation *)

let alert_table () =
  Trace.reset ();
  let ok l = match Trace.parse_alert l with Ok _ -> true | Error _ -> false in
  check_bool "value rule parses" true (ok "a: value(x.y) > 3");
  check_bool "rate rule parses" true (ok "a: rate(x.y) <= 3");
  check_bool "percentile rule parses" true (ok "a: p99(x.y) >= 10");
  check_bool "missing colon rejected" false (ok "a value(x) > 3");
  check_bool "unknown op rejected" false (ok "a: value(x) ~ 3");
  check_bool "bad threshold rejected" false (ok "a: value(x) > lots");
  check_bool "bad percentile rejected" false (ok "a: p200(x) > 3");
  check_bool "unknown source rejected" false (ok "a: max(x) > 3");
  Trace.install_default_alerts ();
  List.iter
    (fun l -> check_bool ("rendered rule round-trips: " ^ l) true (ok l))
    (Trace.alert_rules ());
  let c = Trace.counter "test.alert.c" in
  Trace.incr ~by:5 c;
  ignore (Trace.install_alert "watch: value(test.alert.c) > 3");
  check_bool "a crossed threshold fires" true
    (contains (Trace.alerts_text ()) "watch firing 5");
  ignore (Trace.install_alert "watch: value(test.alert.c) > 9");
  check_bool "same-name install replaces the rule" true
    (contains (Trace.alerts_text ()) "watch ok 5");
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Prometheus exposition: families, buckets, per-window summaries *)

let exposition_format () =
  Trace.reset ();
  Trace.incr ~by:2 (Trace.counter "test.exp.c");
  let h = Trace.histogram "test.exp.h" in
  Trace.observe h 5;
  Trace.observe h 9;
  let m = Trace.metrics_text () in
  check_bool "counter family with _total" true
    (contains m "# TYPE test_exp_c counter\ntest_exp_c_total 2");
  check_bool "histogram family" true (contains m "# TYPE test_exp_h histogram");
  check_bool "+Inf bucket carries the count" true
    (contains m "test_exp_h_bucket{le=\"+Inf\"} 2");
  check_bool "sum and count lines" true
    (contains m "test_exp_h_sum 14" && contains m "test_exp_h_count 2");
  check_bool "window summary family" true
    (contains m "test_exp_h_window{quantile=\"0.99\"}");
  (* well-formedness: every line is a comment or `name[{labels}] value`
     with an integer value *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | Some i ->
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            check_bool ("sample line parses: " ^ line) true
              (int_of_string_opt v <> None)
        | None -> Alcotest.fail ("not a sample line: " ^ line))
    (String.split_on_char '\n' m);
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Two identically scripted sessions expose byte-identical metrics. *)

let scripted_metrics () =
  let t = Session.boot () in
  let edit = Session.win t "/help/edit/stf" in
  Session.exec_word t edit "New";
  ignore (Rc.run t.Session.sh "echo traced");
  ignore (Session.screen t);
  let r = Rc.run t.Session.sh "cat /mnt/help/metrics" in
  check_int "cat metrics succeeds" 0 r.Rc.r_status;
  r.Rc.r_out

let deterministic_metrics () =
  let a = scripted_metrics () in
  let b = scripted_metrics () in
  check_bool "the exposition is nonempty" true (String.length a > 0);
  check_str "identical sessions expose identical metrics" a b

(* ------------------------------------------------------------------ *)
(* Per-request trees and the non-destructive peek, over the mount. *)

let request_trees_over_the_mount () =
  let t = Session.boot () in
  ignore (Rc.run t.Session.sh "cat /mnt/help/index");
  (* boot leaves sampling at rate 1: every request is tagged *)
  let ids = Trace.requests () in
  check_bool "requests are buffered" true (ids <> []);
  let id = List.nth ids (List.length ids - 1) in
  let r = Rc.run t.Session.sh (Printf.sprintf "cat /mnt/help/trace/%d" id) in
  check_int "request file reads" 0 r.Rc.r_status;
  check_bool "it holds the request's rpc span" true (contains r.Rc.r_out "rpc.");
  check_bool "it names the request" true
    (contains r.Rc.r_out (Printf.sprintf "req=%d" id));
  let bad = Rc.run t.Session.sh "cat /mnt/help/trace/999999" in
  check_bool "an unknown request id fails the walk" true
    (bad.Rc.r_status <> 0);
  let p0 = Trace.pending_spans () in
  let l = Rc.run t.Session.sh "cat /mnt/help/trace/last" in
  check_int "peek succeeds" 0 l.Rc.r_status;
  check_bool "peek does not drain" true (Trace.pending_spans () >= p0);
  check_bool "peek shows the spans" true (contains l.Rc.r_out "rpc.")

(* The scheduler counts every sampling verdict. *)

let sampling_counters () =
  Trace.reset ();
  Trace.set_sampling ~seed:1 ~rate:4 ();
  let ns = Vfs.create () in
  ignore (Nine.serve_mount ns "/mnt/nine" (Vfs.ramfs ns));
  Vfs.write_file ns "/mnt/nine/f" "x";
  for _ = 1 to 20 do
    ignore (Vfs.read_file ns "/mnt/nine/f")
  done;
  let v k = Option.value ~default:0 (Trace.find_value k) in
  let sampled = v "nine.trace.sampled" and dropped = v "nine.trace.dropped" in
  check_bool "verdicts were counted" true (sampled > 0 && dropped > 0);
  check_bool "every request got a verdict" true
    (sampled + dropped > 20);
  (* only sampled requests leave tagged spans *)
  let tagged = Trace.requests () in
  check_bool "some requests were traced" true (tagged <> []);
  check_bool "fewer trees than requests" true
    (List.length tagged < sampled + dropped);
  Trace.reset ()

let () =
  Alcotest.run "trace"
    [
      ( "registry",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            registry_basics;
          Alcotest.test_case "percentile edge cases" `Quick percentile_edges;
        ] );
      ( "windows",
        [
          Alcotest.test_case "rotation, deltas, expiry on jumps" `Quick
            window_rotation;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "deterministic seeded head sampling" `Quick
            sampler_determinism;
          Alcotest.test_case "the scheduler counts every verdict" `Quick
            sampling_counters;
        ] );
      ( "alerts",
        [
          Alcotest.test_case "parse, round-trip, evaluate" `Quick alert_table;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus families and window summaries"
            `Quick exposition_format;
        ] );
      ( "reset",
        [
          Alcotest.test_case "clears windows, sampler and alerts" `Quick
            reset_clears_observability;
        ] );
      ( "spans",
        [
          Alcotest.test_case "ring truncation marks dropped spans" `Quick
            ring_truncation;
          Alcotest.test_case "chrome export is well-formed" `Quick
            json_well_formed;
          Alcotest.test_case "scripted sessions trace deterministically"
            `Quick deterministic_sessions;
          Alcotest.test_case "figure replay exports valid JSON" `Quick
            replay_export;
        ] );
      ( "interface",
        [
          Alcotest.test_case "cat /mnt/help/stats shows the ledger" `Quick
            stats_over_the_mount;
          Alcotest.test_case "cat /mnt/help/trace drains the ring" `Quick
            trace_over_the_mount;
          Alcotest.test_case "cat /mnt/help/metrics is byte-deterministic"
            `Quick deterministic_metrics;
          Alcotest.test_case "request trees and trace/last over the mount"
            `Quick request_trees_over_the_mount;
        ] );
      ( "nine",
        [
          Alcotest.test_case "per-message tallies feed the registry" `Quick
            nine_tallies;
        ] );
    ]
