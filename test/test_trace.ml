(* The observability layer: registry semantics, deterministic span
   logs, ring truncation, exporter well-formedness, and the paper's
   own interface — reading the ledger back as /mnt/help/stats and
   /mnt/help/trace from an in-session shell. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec f i = i + n <= m && (String.sub hay i n = needle || f (i + 1)) in
  n = 0 || f 0

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry_basics () =
  Trace.reset ();
  let c = Trace.counter "test.ctr" in
  Trace.incr c;
  Trace.incr ~by:4 c;
  check_int "counter accumulates" 5 (Trace.value c);
  Trace.incr (Trace.counter "test.ctr");
  check_int "find-or-create returns the same cell" 6 (Trace.value c);
  check_bool "find_value sees it" true (Trace.find_value "test.ctr" = Some 6);
  check_bool "find_value misses politely" true
    (Trace.find_value "test.absent" = None);
  let g = Trace.gauge "test.g" in
  Trace.set_gauge g 7;
  check_int "gauge holds last value" 7 (Trace.gauge_value g);
  let h = Trace.histogram "test.h" in
  Trace.observe h 10;
  Trace.observe h 2;
  check_bool "histogram stats" true (Trace.histogram_stats h = (2, 12, 2, 10));
  check_bool "a name cannot change kind" true
    (match Trace.gauge "test.ctr" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let text = Trace.stats_text () in
  check_bool "stats_text has the counter" true (contains text "test.ctr 6");
  check_bool "stats_text expands histograms" true
    (contains text "test.h.count 2" && contains text "test.h.sum 12");
  Trace.reset ();
  check_int "reset zeroes but keeps the cell" 0 (Trace.value c)

(* ------------------------------------------------------------------ *)
(* Span ring *)

let ring_truncation () =
  Trace.reset ();
  let old = Trace.ring_capacity () in
  Trace.set_ring_capacity 8;
  for i = 1 to 20 do
    Trace.with_span "tick" (fun () -> ignore i)
  done;
  check_int "ring holds only the capacity" 8 (Trace.pending_spans ());
  let spans, dropped = Trace.drain () in
  check_int "newest spans survive" 8 (List.length spans);
  check_int "overflow is counted" 12 dropped;
  check_bool "cumulative dropped counter" true
    (Trace.find_value "trace.spans.dropped" = Some 12);
  check_int "drain empties the ring" 0 (Trace.pending_spans ());
  let text = Trace.spans_text ~dropped spans in
  check_bool "the text export marks the truncation" true
    (contains text "# 12 spans dropped");
  Trace.set_ring_capacity old

let json_well_formed () =
  Trace.reset ();
  Trace.with_span
    ~args:[ ("file", "a\"b\\c\n"); ("n", "3") ]
    "outer"
    (fun () -> Trace.with_span "inner" (fun () -> ()));
  let spans, _ = Trace.drain () in
  check_int "nested spans recorded" 2 (List.length spans);
  let json = Trace.spans_json spans in
  check_bool "chrome export is well-formed JSON" true (Jsonv.well_formed json);
  check_bool "it is a traceEvents object" true (contains json "\"traceEvents\"");
  check_bool "empty export is well-formed too" true
    (Jsonv.well_formed (Trace.spans_json []))

(* ------------------------------------------------------------------ *)
(* Determinism: the same scripted session yields the same span log. *)

let scripted_log () =
  let t = Session.boot () in
  let edit = Session.win t "/help/edit/stf" in
  Session.exec_word t edit "New";
  ignore (Rc.run t.Session.sh "echo traced");
  ignore (Session.screen t);
  let spans, dropped = Trace.drain () in
  Trace.spans_text ~dropped spans

let deterministic_sessions () =
  let a = scripted_log () in
  let b = scripted_log () in
  check_bool "the log is nonempty" true (String.length a > 0);
  check_str "identical sessions trace identically" a b

(* ------------------------------------------------------------------ *)
(* The figure-session replay exports a loadable Chrome trace. *)

let replay_export () =
  ignore (Demo.run ());
  let spans, _ = Trace.drain () in
  check_bool "the replay produced spans" true (spans <> []);
  check_bool "its chrome export is valid JSON" true
    (Jsonv.well_formed (Trace.spans_json spans))

(* ------------------------------------------------------------------ *)
(* The paper's interface: cat the ledger from the session's shell. *)

let metric_lines out =
  List.filter_map
    (fun line ->
      match String.index_opt line ' ' with
      | Some i -> (
          let k = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          match int_of_string_opt v with Some v -> Some (k, v) | None -> None)
      | None -> None)
    (String.split_on_char '\n' out)

let stats_over_the_mount () =
  let t = Session.boot () in
  ignore (Session.screen t);
  ignore (Session.screen t);
  (* one read through the mount first: the stats file snapshots at open,
     so the reads that fetch it are not yet in its own content *)
  ignore (Rc.run t.Session.sh "cat /mnt/help/index");
  let r = Rc.run t.Session.sh "cat /mnt/help/stats" in
  check_int "cat succeeds" 0 r.Rc.r_status;
  let m = metric_lines r.Rc.r_out in
  let nonzero key =
    check_bool (key ^ " is live") true
      (match List.assoc_opt key m with Some v -> v > 0 | None -> false)
  in
  List.iter nonzero
    [
      "help.draw.draws"; "help.draw.full"; "help.layout.hit";
      "help.layout.miss"; "nine.rpc.walk"; "nine.rpc.read"; "rc.runs";
      "vfs.walk"; "vfs.read";
    ]

let trace_over_the_mount () =
  let t = Session.boot () in
  ignore (Session.screen t);
  let r = Rc.run t.Session.sh "cat /mnt/help/trace" in
  check_int "cat succeeds" 0 r.Rc.r_status;
  check_bool "draw spans are in the log" true (contains r.Rc.r_out "help.draw");
  check_bool "exec spans are in the log" true (contains r.Rc.r_out "rc.run");
  (* reading drained the ring: a second cat sees only the spans the
     first cat itself produced, not the boot's *)
  let r2 = Rc.run t.Session.sh "cat /mnt/help/trace" in
  check_bool "the drain drained" true
    (String.length r2.Rc.r_out < String.length r.Rc.r_out)

(* ------------------------------------------------------------------ *)
(* 9P per-message tallies (the aggregate ledger vs the per-link view). *)

let nine_tallies () =
  Trace.reset ();
  let ns = Vfs.create () in
  let srv = Nine.serve_mount ns "/mnt/nine" (Vfs.ramfs ns) in
  Vfs.write_file ns "/mnt/nine/f" "tally";
  check_str "read back" "tally" (Vfs.read_file ns "/mnt/nine/f");
  ignore (Vfs.readdir ns "/mnt/nine");
  let global k =
    Option.value ~default:0 (Trace.find_value ("nine.rpc." ^ k))
  in
  List.iter
    (fun k -> check_bool ("nine.rpc." ^ k ^ " tallied") true (global k > 0))
    [ "version"; "attach"; "walk"; "open"; "read"; "write"; "clunk" ];
  (* only one server has run since the reset, so the global ledger must
     equal its per-link view exactly *)
  let per_link = Nine.Server.stats srv in
  List.iter
    (fun (k, v) -> check_int ("ledger agrees on " ^ k) v (global k))
    per_link;
  let rpcs = List.fold_left (fun a (_, v) -> a + v) 0 per_link in
  let cnt, _, _, _ = Trace.histogram_stats (Trace.histogram "nine.rpc.us") in
  check_int "every rpc fed the latency histogram" rpcs cnt

let () =
  Alcotest.run "trace"
    [
      ( "registry",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            registry_basics;
        ] );
      ( "spans",
        [
          Alcotest.test_case "ring truncation marks dropped spans" `Quick
            ring_truncation;
          Alcotest.test_case "chrome export is well-formed" `Quick
            json_well_formed;
          Alcotest.test_case "scripted sessions trace deterministically"
            `Quick deterministic_sessions;
          Alcotest.test_case "figure replay exports valid JSON" `Quick
            replay_export;
        ] );
      ( "interface",
        [
          Alcotest.test_case "cat /mnt/help/stats shows the ledger" `Quick
            stats_over_the_mount;
          Alcotest.test_case "cat /mnt/help/trace drains the ring" `Quick
            trace_over_the_mount;
        ] );
      ( "nine",
        [
          Alcotest.test_case "per-message tallies feed the registry" `Quick
            nine_tallies;
        ] );
    ]
