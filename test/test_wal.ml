(* Durability: op-log round trips, torn tails, journal gaps, snapshot
   chunk sharing, crash recovery that converges byte-for-byte, and the
   two boot-hygiene regressions (index generation bumps, Trace.reset
   clearing window baselines) that motivated the subsystem. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* The regexp-compile LRU is process-global; warm it once so the first
   byte-compared boot does not pay misses later boots would not. *)
let warmed = lazy (ignore (Session.boot ()))
let warm () = Lazy.force warmed

(* ------------------------------------------------------------------ *)
(* Op log *)

let all_ops =
  [
    Wal.O_event (Help.Move (3, 4));
    Wal.O_event (Help.Press Help.Left);
    Wal.O_event (Help.Release Help.Middle);
    Wal.O_event (Help.Key 'q');
    Wal.O_event (Help.Type "hello\nworld");
    Wal.O_point (7, "needle", 2);
    Wal.O_sweep (1, "a b");
    Wal.O_exec_word (2, "mk");
    Wal.O_exec_sweep (3, "mk clean");
    Wal.O_exec_tag (4, "Put!");
    Wal.O_chord_cut (5, "cut me");
    Wal.O_drag (6, 1, 9);
    Wal.O_click_tab 8;
    Wal.O_ctl (9, "show 12");
    Wal.O_reveal 10;
    Wal.O_draw;
    Wal.O_write ("/tmp/f", "contents\n");
    Wal.O_append ("/tmp/f", "more");
    Wal.O_remove "/tmp/f";
    Wal.O_mkdir "/tmp/d";
  ]

let log_roundtrip () =
  Trace.reset ();
  let st = Wal.create_store () in
  let a = Wal.attach ~recording:true st in
  List.iter (Wal.log a) all_ops;
  let ops, torn = Wal.ops_after st ~pos:0 in
  check_int "no torn tail" 0 torn;
  check_bool "every op decodes to itself" true
    (List.map snd ops = all_ops);
  check_int "op_count counts" (List.length all_ops) (Wal.op_count a);
  (* clock stamps are non-decreasing *)
  let stamps = List.map fst ops in
  check_bool "stamps non-decreasing" true
    (List.for_all2 ( <= ) stamps (List.tl stamps @ [ max_int ]))

let torn_tail_tolerated () =
  Trace.reset ();
  let st = Wal.create_store () in
  let a = Wal.attach ~recording:true st in
  Wal.log a Wal.O_draw;
  let cut = Wal.log_pos st in
  Wal.log a (Wal.O_write ("/tmp/x", "data"));
  (* a crash landed mid-frame: every strictly-partial prefix of the
     final record decodes to one good op plus one torn tail *)
  for n = cut + 1 to Wal.log_pos st - 1 do
    let ops, torn = Wal.ops_after (Wal.truncate_log st n) ~pos:0 in
    check_int "good prefix survives" 1 (List.length ops);
    check_int "tail counted torn" 1 torn
  done;
  (* a clean cut is not torn *)
  let ops, torn = Wal.ops_after (Wal.truncate_log st cut) ~pos:0 in
  check_int "clean cut: one op" 1 (List.length ops);
  check_int "clean cut: no tear" 0 torn

let replay_mode_counts_without_appending () =
  Trace.reset ();
  let st = Wal.create_store () in
  let a = Wal.attach ~recording:false st in
  Wal.log a Wal.O_draw;
  Wal.log a (Wal.O_mkdir "/tmp/d");
  check_int "nothing appended" 0 (Wal.log_pos st);
  check_int "ops still counted" 2 (Wal.op_count a);
  check_bool "wal.records still accounted" true
    (Trace.find_value "wal.records" = Some 2)

let journal_gap_is_loud () =
  Trace.reset ();
  let st = Wal.create_store () in
  let a = Wal.attach ~recording:true st in
  List.iter (fun i -> Wal.journal_entry a (i, 1, "Tread")) [ 10; 11; 12 ];
  Wal.verify_journal st;
  Wal.drop_journal_entry st ~seq:2;
  check_bool "gap raises Corrupt" true
    (match Wal.verify_journal st with
    | exception Wal.Corrupt _ -> true
    | () -> false)

let chunks_shared_across_snapshots () =
  Trace.reset ();
  let st = Wal.create_store () in
  let a = Wal.attach ~recording:true st in
  let big = String.concat "" (List.init 200 (fun i -> string_of_int i)) in
  Wal.begin_snapshot a;
  let k1 = Wal.put a big in
  let _ = Wal.put a "small" in
  Wal.commit_snapshot a ~vfs:"v1" ~rc:"r" ~help:"h";
  Wal.begin_snapshot a;
  let k2 = Wal.put a big in
  let _ = Wal.put a "other" in
  Wal.commit_snapshot a ~vfs:"v2" ~rc:"r" ~help:"h";
  check_str "same content, same key" k1 k2;
  check_int "stored once" 3 (Wal.chunk_count st);
  match Wal.snapshots st with
  | [ sn2; sn1 ] ->
      check_bool "first snapshot pays for everything" true
        (Wal.sn_new_bytes sn1 = Wal.sn_total_bytes sn1);
      check_bool "second snapshot pays only the delta" true
        (Wal.sn_new_bytes sn2 < Wal.sn_total_bytes sn2);
      check_bool "shared chunk readable" true (Wal.chunk_get st k1 = big)
  | _ -> Alcotest.fail "expected two snapshots"

(* ------------------------------------------------------------------ *)
(* Crash recovery through the session *)

let script : (Session.t -> unit) list =
  [
    (fun t -> Session.point_at t (Session.win t "help/Boot") "Exit");
    (fun t -> Session.write_file t "/tmp/a" "hello, wal\n");
    (fun t -> Session.type_text t "x");
    (fun t -> ignore (Session.dump t));
    (fun t -> Session.sweep t (Session.win t "/help/edit/stf") "Pattern");
    (fun t -> Session.append_file t "/tmp/a" "more\n");
    (fun t -> ignore (Session.dump t));
  ]

let finish t =
  (Session.dump t, Vfs.read_file t.Session.ns "/mnt/help/stats")

let reference =
  lazy
    (warm ();
     let store = Wal.create_store () in
     let t = Session.boot ~wal:store ~checkpoint_every:4 () in
     let cuts =
       List.map
         (fun op ->
           op t;
           Wal.log_pos store)
         script
     in
     let d, s = finish t in
     (store, cuts, d, s))

let recover_from_cut pos =
  let store, cuts, d_ref, s_ref = Lazy.force reference in
  let t = Session.recover ~checkpoint_every:4 (Wal.truncate_log store pos) in
  (* re-drive the ops the crash threw away: everything after the last
     op whose record fully precedes the cut *)
  let rec todo i = function
    | [] -> []
    | c :: rest -> if c <= pos then todo (i + 1) rest else List.filteri (fun j _ -> j >= i) script
  in
  List.iter (fun op -> op t) (todo 0 cuts);
  let d, s = finish t in
  (d = d_ref, s = s_ref)

let recovery_converges () =
  let store, cuts, _, _ = Lazy.force reference in
  ignore store;
  (* one clean boundary and one torn mid-record cut *)
  let mid = List.nth cuts 2 + 3 in
  List.iter
    (fun pos ->
      let d_ok, s_ok = recover_from_cut pos in
      check_bool (Printf.sprintf "screen converges at cut %d" pos) true d_ok;
      check_bool (Printf.sprintf "stats converge at cut %d" pos) true s_ok)
    [ List.nth cuts 1; mid ]

let recovery_refuses_journal_gap () =
  let store, _, _, _ = Lazy.force reference in
  let crashed = Wal.truncate_log store (Wal.log_pos store) in
  check_bool "journal intact verifies" true
    (match Wal.verify_journal crashed with () -> true);
  Wal.drop_journal_entry crashed ~seq:2;
  check_bool "recover raises Corrupt on the gap" true
    (match Session.recover ~checkpoint_every:4 crashed with
    | exception Wal.Corrupt _ -> true
    | _ -> false)

let wal_files_in_band () =
  warm ();
  let store = Wal.create_store () in
  let t = Session.boot ~wal:store ~checkpoint_every:0 () in
  let snaps0 = List.length (Wal.snapshots store) in
  let stats = Vfs.read_file t.Session.ns "/mnt/help/wal/stats" in
  check_bool "wal/stats names the ledger" true
    (String.length stats > 0
    && String.sub stats 0 13 = "wal.log.bytes");
  Vfs.write_file t.Session.ns "/mnt/help/wal/checkpoint" "now\n";
  check_int "writing checkpoint snapshots now" (snaps0 + 1)
    (List.length (Wal.snapshots store));
  (* without an attachment the directory is absent *)
  let t2 = Session.boot () in
  check_bool "no wal, no wal/" true
    (match Vfs.read_file t2.Session.ns "/mnt/help/wal/stats" with
    | exception Vfs.Error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Property: a crash anywhere in the log recovers and converges.  A
   cut before boot's initial checkpoint models a crash during boot:
   nothing durable exists yet, and recover must refuse with Corrupt
   rather than invent a session. *)

let prop_any_cut_recovers =
  QCheck.Test.make ~name:"recovery converges from any cut position" ~count:8
    (QCheck.make QCheck.Gen.(int_range 0 1_000_000))
    (fun r ->
      let store, _, _, _ = Lazy.force reference in
      let pos = r mod (Wal.log_pos store + 1) in
      let first =
        match List.rev (Wal.snapshots store) with
        | sn :: _ -> Wal.sn_log_pos sn
        | [] -> 0
      in
      if pos < first then
        match Session.recover ~checkpoint_every:4 (Wal.truncate_log store pos) with
        | exception Wal.Corrupt _ -> true
        | _ -> false
      else
        let d_ok, s_ok = recover_from_cut pos in
        d_ok && s_ok)

(* ------------------------------------------------------------------ *)
(* Satellite regressions *)

(* Index staleness: every mutating path — remove, and writes arriving
   through a subtree view (the 9P server's route) — must bump the
   namespace generation, or pruned grep serves hits from deleted or
   stale text. *)
let index_fresh_after_mutations () =
  let ns = Vfs.create () in
  Vfs.mkdir_p ns "/src";
  let files = List.init 4 (fun i -> Printf.sprintf "/src/f%d.txt" i) in
  List.iteri
    (fun i p -> Vfs.write_file ns p (Printf.sprintf "alpha%d needle\n" i))
    files;
  let ix = Index.create ns in
  let re = Regexp.compile "needle" in
  let same () =
    Index.hits_text (Index.grep ix re files)
    = Index.hits_text (Index.grep_linear ix re files)
  in
  check_bool "baseline agrees" true (same ());
  Vfs.remove ns "/src/f2.txt";
  check_bool "after remove: indexed = linear" true (same ());
  check_int "removed file yields no hits" 3
    (List.length (Index.grep ix re files));
  (* a subtree view mutates: create, truncating open, plain write *)
  let sub = Vfs.subtree ns "/src" in
  sub.Vfs.fs_create [ "f9.txt" ] ~dir:false;
  let f = sub.Vfs.fs_open [ "f9.txt" ] Vfs.Write ~trunc:false in
  ignore (f.Vfs.of_write ~off:0 "subtree needle\n");
  f.Vfs.of_close ();
  let files = files @ [ "/src/f9.txt" ] in
  check_bool "after subtree write: indexed = linear" true
    (Index.hits_text (Index.grep ix re files)
    = Index.hits_text (Index.grep_linear ix re files));
  let g = Vfs.generation ns in
  let f = sub.Vfs.fs_open [ "f9.txt" ] Vfs.Write ~trunc:true in
  f.Vfs.of_close ();
  check_bool "truncating open bumps generation" true (Vfs.generation ns > g)

(* Boot hygiene: Trace.reset must clear rolling-window baselines and
   alert latches, or the second boot's /mnt/help/metrics inherits the
   first boot's deltas. *)
let fresh_boots_report_identically () =
  warm ();
  (* two further boots, beyond the warm-up, must agree byte-for-byte *)
  let m1 =
    let t = Session.boot () in
    Vfs.read_file t.Session.ns "/mnt/help/metrics"
  in
  let m2 =
    let t = Session.boot () in
    Vfs.read_file t.Session.ns "/mnt/help/metrics"
  in
  check_str "metrics byte-identical across fresh boots" m1 m2

let () =
  Alcotest.run "wal"
    [
      ( "log",
        [
          Alcotest.test_case "every op round-trips" `Quick log_roundtrip;
          Alcotest.test_case "torn tail tolerated, clean cut distinguished"
            `Quick torn_tail_tolerated;
          Alcotest.test_case "replay mode counts without appending" `Quick
            replay_mode_counts_without_appending;
          Alcotest.test_case "journal gap raises Corrupt" `Quick
            journal_gap_is_loud;
          Alcotest.test_case "snapshots share unchanged chunks" `Quick
            chunks_shared_across_snapshots;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash+recover converges byte-for-byte" `Slow
            recovery_converges;
          Alcotest.test_case "recovery refuses a journal gap" `Slow
            recovery_refuses_journal_gap;
          Alcotest.test_case "wal/{stats,checkpoint} served in-band" `Slow
            wal_files_in_band;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_any_cut_recovers ] );
      ( "regressions",
        [
          Alcotest.test_case "index stays fresh across mutating paths" `Quick
            index_fresh_after_mutations;
          Alcotest.test_case "fresh boots report identical metrics" `Slow
            fresh_boots_report_identically;
        ] );
    ]
